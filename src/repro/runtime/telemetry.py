"""Unified observability: metrics, structured events, deterministic replay.

Three layers, all zero-dependency:

* :class:`MetricsRegistry` — counters, value series and wall-clock timers.
  Engines accept ``metrics=``; passing ``None`` (the default) keeps the hot
  loops untouched except for one ``is not None`` check per step, so the
  disabled overhead is unmeasurable.  Counter names are engine-agnostic
  (``steps``, ``node_updates``, ``rng_draws``, ``fault_events``,
  ``churn_events``) so the
  Theorem 3.7 interchangeability claim extends to the instrumentation: the
  conformance suite asserts the counters agree exactly across the
  reference, vectorized and batched engines.

* :class:`EventStream` — an append-only log of typed records
  (:class:`RunStartedEvent`, :class:`StepEvent`, :class:`RunEndedEvent`)
  with a JSONL sink.  :class:`~repro.runtime.trace.Trace`,
  :class:`~repro.runtime.api.TraceObserver` and
  :class:`~repro.runtime.api.MetricsObserver` are thin views over this one
  schema — ``trace.StepRecord`` *is* :class:`StepEvent` — ending the
  historical two-schema split between ``runtime/trace.py`` and
  ``runtime/api.py``.

* :class:`RunManifest` / :func:`replay` — every
  :func:`repro.runtime.api.run` call captures what it would take to
  re-execute it bit-for-bit (IR content hash, seeds or full RNG state,
  engine, termination policy, fault schedule, the pre-fault topology,
  library versions) plus a fingerprint of the final state.
  ``replay(result.manifest)`` re-runs and raises
  :class:`ReplayMismatchError` unless the reproduction is bitwise
  identical — the paper's engine-interchangeability methodology applied to
  experiment reproducibility itself.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import json
import platform
import re
from collections.abc import Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Optional

import numpy as np

__all__ = [
    "MetricsRegistry",
    "coerce_rng",
    "RunStartedEvent",
    "StepEvent",
    "RunEndedEvent",
    "JobEvent",
    "StepProgressEvent",
    "EventStream",
    "RunManifest",
    "manifest_content_hash",
    "ReplayMismatchError",
    "replay",
    "capture_manifest",
    "state_fingerprint",
    "network_fingerprint",
    "library_versions",
]


# ----------------------------------------------------------------------
# RNG coercion
# ----------------------------------------------------------------------
def coerce_rng(rng) -> Any:
    """Coerce an engine's ``rng`` argument to something with ``integers``.

    Seeds (ints, ``None``, ``SeedSequence``…) become a fresh
    ``np.random.Generator``; real Generators pass through; so does any
    duck-typed draw source exposing ``integers`` — e.g.
    :class:`~repro.runtime.quotient.OrbitBroadcastRng`, which lets the
    full-graph engines consume the quotient engine's shared per-orbit draw
    convention for bitwise cross-engine conformance.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    if hasattr(rng, "integers"):
        return rng
    return np.random.default_rng(rng)


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """Named counters, value series and timers for one or more runs.

    ``inc`` and ``observe`` are plain dict operations; the registry is
    cheap enough to sit inside engine step loops.  Disabling metrics means
    *not passing a registry* — engines guard every emission with a single
    ``metrics is not None`` check, so the disabled cost is one branch per
    step.

    Counter names emitted by the engines:

    ``steps``
        ``step()`` calls executed.
    ``node_updates``
        node-state changes applied (batched: state-cell changes, which at
        R = 1 equals the vectorized count).
    ``rng_draws``
        random draws consumed (0 for deterministic automata).
    ``fault_events``
        down events (deletions) that actually fired — the historical
        decreasing-faults meaning.
    ``churn_events``
        all applied topology events, up events included; equals
        ``fault_events`` for deletion-only plans.
    ``lowering_cache_hits`` / ``lowering_cache_misses`` / ``csr_rebuilds``
        compiler/export cache activity, recorded per :func:`run` call.

    The batched engine additionally records the series
    ``active_fraction`` — the fraction of replicas still active at each
    step (the quiescence-mask density).

    Besides counters and series, a registry carries string ``tags`` —
    run-level labels rather than accumulating measurements.  Engines set
    the ``backend`` tag to the resolved
    :class:`~repro.runtime.backends.ArrayBackend` name, so stored
    snapshots say which substrate produced the counters.
    """

    __slots__ = ("counters", "series", "tags")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.series: dict[str, list] = {}
        self.tags: dict[str, str] = {}

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def set_tag(self, name: str, value: str) -> None:
        """Attach a run-level label (last writer wins)."""
        self.tags[name] = value

    def observe(self, name: str, value) -> None:
        """Append ``value`` to the series ``name``."""
        self.series.setdefault(name, []).append(value)

    def get(self, name: str, default: int = 0) -> int:
        """Current value of counter ``name``."""
        return self.counters.get(name, default)

    @contextmanager
    def timer(self, name: str):
        """Context manager appending the elapsed seconds to series ``name``."""
        t0 = perf_counter()
        try:
            yield self
        finally:
            self.observe(name, perf_counter() - t0)

    def snapshot(self) -> dict:
        """A deep-enough copy of everything, safe to stash and diff."""
        return {
            "counters": dict(self.counters),
            "series": {k: list(v) for k, v in self.series.items()},
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry({len(self.counters)} counters, "
            f"{len(self.series)} series)"
        )


# ----------------------------------------------------------------------
# typed run events — the one schema every observer/trace is a view over
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunStartedEvent:
    """Emitted once when a run begins."""

    n_nodes: Optional[int] = None
    engine: Optional[str] = None


@dataclass(frozen=True)
class StepEvent:
    """One executed synchronous step.

    ``changes`` maps changed nodes to ``(old, new)`` pairs; producers that
    only track counts (e.g. :class:`~repro.runtime.api.MetricsObserver`)
    leave it ``None`` and fill ``change_count`` directly — it is derived
    from ``changes`` otherwise.  ``faults`` lists the fault events applied
    immediately before the step.  The field order ``(time, changes,
    faults)`` is the legacy ``trace.StepRecord`` constructor signature,
    which this class replaces (``StepRecord`` is an alias).
    """

    time: int
    changes: Optional[dict] = None
    faults: list = field(default_factory=list)
    change_count: Optional[int] = None
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.change_count is None and self.changes is not None:
            object.__setattr__(self, "change_count", len(self.changes))

    @property
    def quiescent(self) -> bool:
        """True iff nothing changed in this step."""
        return not self.change_count and not self.faults


@dataclass(frozen=True)
class RunEndedEvent:
    """Emitted once when a run completes."""

    steps: int
    engine: Optional[str] = None
    converged: Optional[bool] = None
    wall_time: Optional[float] = None
    rng_draws: Optional[int] = None


@dataclass(frozen=True)
class JobEvent:
    """One lifecycle transition of a service-submitted job.

    Emitted by :class:`repro.service.jobs.JobManager` into the per-job
    :class:`EventStream` that backs the SSE feed: ``status`` walks
    ``queued → started → (retry…) → done | failed``, with ``cached`` for
    submissions answered straight from the artifact store.  ``detail``
    carries status-specific context (attempt number, error text, the
    sealed record's ``content_hash``).
    """

    job_hash: str
    status: str
    detail: Optional[dict] = None

    @property
    def terminal(self) -> bool:
        """True iff no further events can follow for this job."""
        return self.status in ("done", "failed", "cached")


@dataclass(frozen=True)
class StepProgressEvent:
    """Progress from *inside* a running service job, at a stride.

    Emitted by worker processes through the cluster event spool (see
    ``repro.cluster.spool``): every ``stride`` synchronous steps the job
    reports its step index, the fraction of state still in motion and a
    small counter delta, so SSE subscribers — on any replica, not just
    the executing one — see progress at step granularity instead of
    job-lifecycle granularity only.  Never terminal.
    """

    job_hash: str
    step: int
    active_fraction: Optional[float] = None
    counters: Optional[dict] = None
    replica: Optional[str] = None


_EVENT_TAGS = {
    "RunStartedEvent": "run_started",
    "StepEvent": "step",
    "RunEndedEvent": "run_ended",
    "JobEvent": "job",
    "StepProgressEvent": "step_progress",
}
_TAG_CLASSES = {
    "run_started": RunStartedEvent,
    "step": StepEvent,
    "run_ended": RunEndedEvent,
    "job": JobEvent,
    "step_progress": StepProgressEvent,
}


def _jsonable(x):
    """Best-effort JSON projection: dataclasses/mappings/sequences recurse,
    numpy scalars unbox, everything else falls back to ``repr``."""
    if isinstance(x, (str, int, float, bool)) or x is None:
        return x
    if isinstance(x, np.integer):
        return int(x)
    if isinstance(x, np.floating):
        return float(x)
    if dataclasses.is_dataclass(x) and not isinstance(x, type):
        return {
            f.name: _jsonable(getattr(x, f.name))
            for f in dataclasses.fields(x)
        }
    if isinstance(x, Mapping):
        return {
            k if isinstance(k, str) else repr(k): _jsonable(v)
            for k, v in x.items()
        }
    if isinstance(x, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in x]
    return repr(x)


class EventStream:
    """An append-only log of typed run events.

    This is the single source of truth the trace/observer classes expose
    different views of: :class:`~repro.runtime.trace.Trace` shows the
    :class:`StepEvent` sequence with full change dicts, while
    :class:`~repro.runtime.api.MetricsObserver` derives timing and the
    convergence curve from the same records.  ``to_jsonl`` persists the
    stream as one JSON object per line for offline analysis.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list = []

    def emit(self, event) -> None:
        self.events.append(event)

    def step_events(self) -> list[StepEvent]:
        """The :class:`StepEvent` records, in emission order."""
        return [e for e in self.events if isinstance(e, StepEvent)]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def dumps(self) -> str:
        """The whole stream as JSONL (one tagged object per line)."""
        lines = []
        for ev in self.events:
            obj = {"type": _EVENT_TAGS.get(type(ev).__name__, type(ev).__name__)}
            obj.update(_jsonable(ev))
            lines.append(json.dumps(obj, default=repr))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_jsonl(self, path) -> None:
        """Write the stream to ``path`` as JSON Lines."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())

    @classmethod
    def loads(cls, text: str) -> "EventStream":
        """Parse a :meth:`dumps` JSONL string back into typed events.

        The inverse of :meth:`dumps` *at the JSONL level*: states and node
        ids were projected to JSON when dumped (tuples became lists,
        non-string dict keys became their ``repr``), so loaded events hold
        that projection — but ``stream.loads(s).dumps() == s`` for any
        dumped ``s``, which is what offline round-tripping needs.  Unknown
        event tags raise ``ValueError`` (a stream is a typed log, not a
        grab bag); unknown *fields* on known tags are dropped, so newer
        streams load on older readers.
        """
        stream = cls()
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {lineno} is not JSON: {exc}") from exc
            tag = obj.pop("type", None)
            event_cls = _TAG_CLASSES.get(tag)
            if event_cls is None:
                raise ValueError(f"line {lineno}: unknown event type {tag!r}")
            names = {f.name for f in dataclasses.fields(event_cls)}
            stream.emit(event_cls(**{k: v for k, v in obj.items() if k in names}))
        return stream

    @classmethod
    def from_jsonl(cls, path) -> "EventStream":
        """Load a stream previously written with :meth:`to_jsonl`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.loads(fh.read())


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def state_fingerprint(state: Mapping) -> str:
    """Order-independent content hash of a node → state assignment."""
    h = hashlib.sha256()
    for line in sorted(f"{v!r}\x1f{q!r}" for v, q in state.items()):
        h.update(line.encode())
        h.update(b"\x1e")
    return h.hexdigest()


def network_fingerprint(net) -> str:
    """Content hash of a network's node set and (canonical) edge set."""
    return _topology_fingerprint(net.nodes(), net.edges())


def _topology_fingerprint(nodes, edges) -> str:
    h = hashlib.sha256()
    for part in sorted(repr(v) for v in nodes):
        h.update(part.encode())
        h.update(b"\x1e")
    h.update(b"\x1d")
    for part in sorted(repr(e) for e in edges):
        h.update(part.encode())
        h.update(b"\x1e")
    return h.hexdigest()


def library_versions() -> dict:
    """Versions of the libraries a run's bitwise behaviour depends on."""
    out = {"python": platform.python_version(), "numpy": np.__version__}
    try:
        import scipy

        out["scipy"] = scipy.__version__
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        pass
    try:
        from repro import __version__

        out["repro"] = __version__
    except ImportError:  # pragma: no cover - defensive
        pass
    return out


# ----------------------------------------------------------------------
# RNG capture/restore
# ----------------------------------------------------------------------
def capture_rng(rng) -> tuple:
    """Snapshot an ``rng`` argument before a run consumes it.

    Seeds (ints or ``None``) are recorded verbatim; live Generators have
    their full bit-generator state captured so replay restores the exact
    stream position; a sequence of Generators (the batched engine's
    explicit-streams form) captures each.
    """
    if isinstance(rng, np.random.Generator):
        return ("state", _generator_snapshot(rng))
    if isinstance(rng, (Sequence, list, tuple)) and not isinstance(rng, (str, bytes)):
        return ("states", [_generator_snapshot(g) for g in rng])
    return ("seed", rng)


def _generator_snapshot(gen: np.random.Generator) -> dict:
    """Full restorable snapshot of a Generator.

    ``bit_generator.state`` pins the stream position but *not* the seed
    sequence, and ``Generator.spawn`` (how the batched engine derives its
    per-replica streams) draws children from the seed sequence — so the
    sequence's entropy/spawn bookkeeping must be captured too or replay of
    a spawning run diverges.
    """
    snap = {"state": copy.deepcopy(gen.bit_generator.state)}
    seed_seq = getattr(gen.bit_generator, "seed_seq", None)
    if isinstance(seed_seq, np.random.SeedSequence):
        snap["seed_seq"] = {
            "entropy": seed_seq.entropy,
            "spawn_key": tuple(seed_seq.spawn_key),
            "pool_size": seed_seq.pool_size,
            "n_children_spawned": seed_seq.n_children_spawned,
        }
    return snap


def _generator_from_state(snap: dict) -> np.random.Generator:
    state = snap["state"]
    seed_seq = snap.get("seed_seq")
    if seed_seq is not None:
        bitgen = getattr(np.random, state["bit_generator"])(
            np.random.SeedSequence(
                entropy=seed_seq["entropy"],
                spawn_key=tuple(seed_seq["spawn_key"]),
                pool_size=seed_seq["pool_size"],
                n_children_spawned=seed_seq["n_children_spawned"],
            )
        )
    else:
        bitgen = getattr(np.random, state["bit_generator"])()
    gen = np.random.Generator(bitgen)
    gen.bit_generator.state = copy.deepcopy(state)
    return gen


def restore_rng(captured: tuple):
    """Rebuild the ``rng`` argument recorded by :func:`capture_rng`."""
    kind, payload = captured
    if kind == "seed":
        return payload
    if kind == "state":
        return _generator_from_state(payload)
    return [_generator_from_state(s) for s in payload]


# ----------------------------------------------------------------------
# run manifests and deterministic replay
# ----------------------------------------------------------------------
class ReplayMismatchError(AssertionError):
    """A replayed run diverged from its manifest's recorded outcome."""


def _callable_name(fn) -> str:
    """A process-independent name for a callable: ``module.qualname`` for
    plain functions, a repr with any ``0x…`` address stripped otherwise
    (lambdas and closures have no stable identity — their *qualname* is
    still stable, their address is not)."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if module and qualname:
        return f"{module}.{qualname}"
    return re.sub(r" at 0x[0-9a-fA-F]+", "", repr(fn))


def manifest_content_hash(manifest: "RunManifest") -> str:
    """sha256 content hash of a manifest's serializable summary.

    Deterministic across processes for spec-seeded runs: the JSON names
    callables stably, RNG identity is entropy/spawn-key bookkeeping, and
    topology/state enter as content fingerprints.  This is the hash the
    campaign artifact store records next to each job, letting a finished
    campaign cite — and :func:`replay`-verify — exactly which runs
    produced its statistics.
    """
    return hashlib.sha256(manifest.to_json().encode("utf-8")).hexdigest()


@dataclass
class RunManifest:
    """Everything :func:`replay` needs to re-execute a :func:`run` call.

    The serializable identity fields (``ir_hash``, ``network``, ``rng``,
    ``engine``, ``versions``, the outcome fingerprints) go to JSON via
    :meth:`to_json`; the live objects (``automaton``, ``net``, ``init``,
    a callable ``until``) are held by reference so replay works within the
    capturing process.  ``network_nodes``/``network_edges`` snapshot the
    pre-run topology only when a fault plan is present — faulted runs
    mutate ``net``, so replay must rebuild it; fault-free runs re-use the
    network object directly.
    """

    engine: str
    until: Any
    max_steps: int
    replicas: Optional[int]
    randomness: Optional[int]
    ir_hash: Optional[str]
    rng: tuple
    fault_events: tuple
    backend: Optional[str] = None
    versions: dict = field(default_factory=library_versions)
    automaton: Any = field(default=None, repr=False)
    net: Any = field(default=None, repr=False)
    init: Any = field(default=None, repr=False)
    network_nodes: Optional[list] = field(default=None, repr=False)
    network_edges: Optional[list] = field(default=None, repr=False)
    # outcome, filled by finalize() when the run completes
    steps: Optional[int] = None
    rng_draws: Optional[int] = None
    final_fingerprint: Optional[str] = None
    replica_fingerprints: Optional[list] = None
    _network: Optional[str] = field(default=None, repr=False)

    @property
    def network(self) -> Optional[str]:
        """Content hash of the pre-run topology, computed on first access.

        Hashing a large network costs real time (it sorts every edge repr),
        so :func:`capture_manifest` defers it off the run's hot path.
        Faulted runs hash the pre-fault snapshot; fault-free runs hash the
        live network, so access the fingerprint before mutating it.
        """
        if self._network is None:
            if self.network_nodes is not None:
                self._network = _topology_fingerprint(
                    self.network_nodes, self.network_edges
                )
            elif self.net is not None:
                self._network = network_fingerprint(self.net)
        return self._network

    def finalize(self, result) -> None:
        """Record the completed run's outcome fingerprints."""
        self.steps = result.steps
        self.rng_draws = result.rng_draws
        self.final_fingerprint = state_fingerprint(result.final_state)
        if result.replica_states is not None:
            self.replica_fingerprints = [
                state_fingerprint(s) for s in result.replica_states
            ]

    def to_json(self) -> str:
        """The serializable summary (live object references omitted).

        Callables are named by module-qualified path rather than ``repr``
        (which embeds a memory address), so the JSON — and therefore
        :func:`manifest_content_hash` — is stable across processes.
        """
        obj = {
            f.name: _jsonable(getattr(self, f.name))
            for f in dataclasses.fields(self)
            if f.name not in ("automaton", "net", "init", "_network")
        }
        obj["network"] = self.network
        if callable(self.until):
            obj["until"] = _callable_name(self.until)
        return json.dumps(obj, default=repr)


def capture_manifest(
    *,
    automaton,
    net,
    init,
    engine: str,
    until,
    max_steps: int,
    replicas: Optional[int],
    randomness: Optional[int],
    rng,
    fault_plan,
    backend: Optional[str] = None,
) -> RunManifest:
    """Snapshot a :func:`run` call's inputs (called before any step runs).

    Must run before the engine consumes ``rng`` or the fault plan mutates
    ``net`` — both are captured by value here.  The IR hash is a cache hit
    for anything already negotiated; automata that do not lower record
    ``ir_hash=None`` (their identity is carried by the live reference).
    """
    from repro.core.ir import lower

    try:
        ir_hash = lower(automaton, randomness).content_hash()
    except TypeError:  # LoweringError — reference-only automaton
        ir_hash = None
    events = tuple(fault_plan.events()) if fault_plan is not None else ()
    nodes = edges = None
    if events:
        nodes = net.nodes()
        edges = net.edges()
    return RunManifest(
        engine=engine,
        until=until,
        max_steps=max_steps,
        replicas=replicas,
        randomness=randomness,
        ir_hash=ir_hash,
        rng=capture_rng(rng),
        fault_events=events,
        backend=backend,
        automaton=automaton,
        net=net,
        init=init,
        network_nodes=nodes,
        network_edges=edges,
    )


def replay(manifest: RunManifest, *, check: bool = True):
    """Re-execute a manifested run; assert the outcome is bitwise identical.

    Rebuilds the pre-churn network when the original run had topology
    events (and a fresh :class:`~repro.runtime.churn.ChurnPlan` from the
    recorded events — up events included, so churned runs replay
    exactly), restores the RNG to its captured position, pins the engine
    *and array backend* the original run selected, and re-runs.  With ``check=True`` (default)
    the final-state fingerprint(s), executed steps and consumed draws must
    all match the manifest or :class:`ReplayMismatchError` is raised.
    Returns the fresh :class:`~repro.runtime.api.RunResult`.
    """
    from repro.network.graph import Network
    from repro.runtime.api import run
    from repro.runtime.churn import ChurnPlan

    if manifest.final_fingerprint is None:
        raise ValueError(
            "manifest records no outcome: the original run did not complete"
        )
    if manifest.automaton is None or manifest.init is None:
        raise ValueError(
            "manifest holds no live automaton/init references; replay only "
            "works in the process that captured the manifest"
        )
    if manifest.network_nodes is not None:
        net = Network(manifest.network_nodes, manifest.network_edges)
    elif manifest.net is not None:
        net = manifest.net
    else:
        raise ValueError("manifest holds neither a network nor its snapshot")
    # a fresh plan is rebuilt from the recorded events and passed through
    # ensure_fresh(), so replay always re-applies the schedule from the
    # top — never from a stale cursor position, even if a caller-held plan
    # object was partially consumed by a manual apply_due in the meantime
    # (the churn.py cursor contract, same as engine construction)
    plan = (
        ChurnPlan(list(manifest.fault_events)).ensure_fresh()
        if manifest.fault_events
        else None
    )
    result = run(
        manifest.automaton,
        net,
        manifest.init,
        engine=manifest.engine,
        until=manifest.until,
        max_steps=manifest.max_steps,
        replicas=manifest.replicas,
        randomness=manifest.randomness,
        rng=restore_rng(manifest.rng),
        fault_plan=plan,
        backend=manifest.backend or "auto",
    )
    if check:
        problems = []
        got = state_fingerprint(result.final_state)
        if got != manifest.final_fingerprint:
            problems.append(
                f"final state fingerprint {got[:12]}… != recorded "
                f"{manifest.final_fingerprint[:12]}…"
            )
        if manifest.replica_fingerprints is not None:
            got_reps = [state_fingerprint(s) for s in result.replica_states or []]
            if got_reps != manifest.replica_fingerprints:
                problems.append("per-replica state fingerprints differ")
        if manifest.steps is not None and result.steps != manifest.steps:
            problems.append(
                f"steps {result.steps} != recorded {manifest.steps}"
            )
        if manifest.rng_draws is not None and result.rng_draws != manifest.rng_draws:
            problems.append(
                f"rng draws {result.rng_draws} != recorded {manifest.rng_draws}"
            )
        if problems:
            raise ReplayMismatchError(
                "replay diverged from the manifest: " + "; ".join(problems)
            )
    return result
