"""One front door for every execution engine.

Theorem 3.7 makes the three synchronous engines interchangeable on
mod-thresh automata; this module is where the codebase exploits it.
:func:`run` accepts any automaton, picks the fastest engine that can
execute it (``engine="auto"``), applies one unified termination policy,
streams per-step events to pluggable :class:`StepObserver` instances, and
returns a structured :class:`RunResult`.

Engine selection under ``engine="auto"`` is capability negotiation over
the shared compiler IR (:mod:`repro.core.ir`), not isinstance checks:

* any automaton :func:`repro.core.ir.lower` accepts — mod-thresh program
  mappings, automata built from programs of any Theorem 3.7 form,
  rule-based automata declaring ``compile_hints`` — goes to the
  :class:`~repro.runtime.vectorized.VectorizedSynchronousEngine`, or the
  :class:`~repro.runtime.batched.BatchedSynchronousEngine` when
  ``replicas=R`` is passed.  A ``fault_plan`` — including a general
  :class:`~repro.runtime.churn.ChurnPlan` with ``node-up``/``edge-up``
  arrivals — no longer forces a fallback: the plan is lowered into
  per-step live-node masks (arrivals via the plan's union topology) and
  the churned run stays vectorized;
* automata the compiler rejects (no ``compile_hints``, untraced
  neighbourhood queries, non-enumerable alphabets — see
  ``docs/model.md`` for the genuine-fallback list) run on the reference
  :class:`~repro.runtime.simulator.SynchronousSimulator`;
* a **deterministic** lowerable automaton on a network with a declared
  automorphism group (:meth:`~repro.network.graph.Network.declare_symmetry`),
  an orbit-constant initial state and no fault plan goes to the
  :class:`~repro.runtime.quotient.QuotientSynchronousEngine`, which
  simulates one representative per orbit and lifts the trajectory back to
  full-state views — bitwise identical results at n/k cost.  Any broken
  precondition (fault plan, non-orbit-constant init, missing or stale
  group) falls back to the full-graph path;
  :func:`~repro.runtime.api._quotient_blocker` names the actual blocker,
  and ``engine="quotient"`` surfaces it as a structured
  :class:`~repro.core.ir.QuotientLoweringError`.  Probabilistic automata
  are *never* auto-quotiented (the shared per-orbit draw convention is a
  different stochastic process — symmetry can never break); request
  ``engine="quotient"`` to opt in;
* ``engine="reference"`` forces the reference interpreter everywhere (the
  conformance escape hatch): for a shared seed the reference and
  vectorized paths produce bitwise-identical trajectories, probabilistic
  draws included — with or without faults.

Orthogonal to engine selection, ``backend=`` chooses which
:class:`~repro.runtime.backends.ArrayBackend` executes the array engines'
step kernel (numpy — the default and bitwise reference — array-API, or
the optional numba JIT).  Every array engine composes with every backend;
a pinned backend that cannot run raises
:class:`~repro.core.ir.BackendLoweringError` naming the blocker.

Termination policy (one convention for every engine — ``RunResult.steps``
always counts ``step()`` calls actually executed):

* ``until=k`` (an int): exactly ``k`` synchronous steps; ``steps == k``.
* ``until="stable"``: run to a fixed point.  The final no-change step *is*
  executed and counted (so a network that is born stable reports
  ``steps == 1``), matching the engines' ``run_until_stable``.  With a
  ``fault_plan``, stability additionally requires the plan exhausted.
* ``until=predicate`` (a callable ``NetworkState -> bool``): the predicate
  is checked *before* each step, so an initially satisfied predicate
  reports ``steps == 0``.  With ``replicas=R`` the predicate is evaluated
  per replica and satisfied replicas are deactivated (they stop evolving
  and stop consuming randomness).

Both open-ended modes raise :class:`RuntimeError` at ``max_steps``.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional, Protocol, Union

import numpy as np

from repro.core.automaton import FSSGA, ProbabilisticFSSGA
from repro.core.ir import (
    BackendLoweringError,
    LoweringError,
    QuotientLoweringError,
    lower,
    lowering_cache_info,
)
from repro.network.graph import Network
from repro.network.state import NetworkState
from repro.network.symmetry import SymmetryError
from repro.runtime.backends import (
    BACKENDS,
    DEFAULT_MAX_STEPS,
    ArrayBackend,
    resolve_backend,
)
from repro.runtime.batched import BatchedSynchronousEngine
from repro.runtime.churn import ChurnPlan
from repro.runtime.quotient import QuotientSynchronousEngine
from repro.runtime.simulator import SynchronousSimulator
from repro.runtime.telemetry import (
    EventStream,
    MetricsRegistry,
    RunEndedEvent,
    RunManifest,
    RunStartedEvent,
    StepEvent,
    capture_manifest,
)
from repro.runtime.trace import Trace
from repro.runtime.vectorized import VectorizedSynchronousEngine

__all__ = [
    "Engine",
    "RunResult",
    "StepObserver",
    "TraceObserver",
    "MetricsObserver",
    "run",
    "supports_vectorized",
    "ENGINES",
    "BACKENDS",
]

Automaton = Union[FSSGA, ProbabilisticFSSGA, Mapping]
Until = Union[int, str, Callable[[NetworkState], bool]]

ENGINES = ("auto", "reference", "vectorized", "batched", "quotient")


class Engine(Protocol):
    """What :func:`run` needs from an execution engine: one synchronous
    ``step()`` plus a decodable ``state``.  All three engines satisfy it
    structurally; the front door adapts their differing step/termination
    signatures to the unified policy."""

    def step(self): ...

    @property
    def state(self) -> NetworkState: ...


# ----------------------------------------------------------------------
# observers
# ----------------------------------------------------------------------
class StepObserver:
    """Pluggable per-step hook.  Subclass and override what you need.

    ``on_step(time, changes, faults)`` fires after every executed step:
    ``time`` is the 0-based index of the completed step, ``changes`` maps
    changed nodes to ``(old, new)`` pairs (for batched runs: changed
    *replica indices* to ``True``), ``faults`` lists the fault events
    applied immediately before the step — on every engine.
    """

    def on_run_start(self, net: Network, state: NetworkState) -> None:
        pass

    def on_step(self, time: int, changes: dict, faults: list) -> None:
        pass

    def on_run_end(self, result: "RunResult") -> None:
        pass


class TraceObserver(StepObserver):
    """Adapts a :class:`~repro.runtime.trace.Trace` to the observer
    interface, so existing trace-based assertions work unchanged through
    :func:`run` on any engine."""

    def __init__(self, trace: Optional[Trace] = None) -> None:
        self.trace = trace if trace is not None else Trace()

    def on_step(self, time: int, changes: dict, faults: list) -> None:
        self.trace.record(time, changes, faults)


class MetricsObserver(StepObserver):
    """Lightweight per-run metrics: wall time per step and the convergence
    curve (changed-node count per step), cheap enough for benchmarks.

    Since the telemetry unification this is a view over a
    :class:`~repro.runtime.telemetry.EventStream`: every step becomes a
    timed :class:`~repro.runtime.telemetry.StepEvent` (``change_count``
    only, no per-node dict) and the run boundaries become
    ``RunStartedEvent``/``RunEndedEvent``, so ``observer.stream`` can be
    persisted with ``stream.to_jsonl(path)`` or shared with other
    producers.  The historical accessors (``step_times``,
    ``change_counts``, ``total_time``, ``convergence_curve``) are derived
    from the stream and unchanged for callers.
    """

    def __init__(self, stream: Optional[EventStream] = None) -> None:
        self.stream = stream if stream is not None else EventStream()
        self._last: Optional[float] = None

    def on_run_start(self, net: Network, state: NetworkState) -> None:
        self.stream.emit(RunStartedEvent(n_nodes=len(net)))
        self._last = perf_counter()

    def on_step(self, time: int, changes: dict, faults: list) -> None:
        now = perf_counter()
        duration = now - self._last if self._last is not None else None
        self._last = now
        self.stream.emit(
            StepEvent(
                time,
                faults=list(faults),
                change_count=len(changes),
                duration=duration,
            )
        )

    def on_run_end(self, result: "RunResult") -> None:
        self.stream.emit(
            RunEndedEvent(
                steps=result.steps,
                engine=result.engine,
                converged=result.converged,
                wall_time=result.wall_time,
                rng_draws=result.rng_draws,
            )
        )

    @property
    def step_times(self) -> list[float]:
        return [
            e.duration
            for e in self.stream.step_events()
            if e.duration is not None
        ]

    @property
    def change_counts(self) -> list[int]:
        return [e.change_count for e in self.stream.step_events()]

    @property
    def total_time(self) -> float:
        return sum(self.step_times)

    def convergence_curve(self) -> list[int]:
        """Changed-node count per step — flat at 0 once converged."""
        return list(self.change_counts)


class _FaultCapture:
    """Minimal trace stand-in harvesting the faults of the latest step
    (``SynchronousSimulator.step`` returns changes but not faults)."""

    def __init__(self) -> None:
        self.last_faults: list = []

    def record(self, time, changes, faults=None, state=None) -> None:
        self.last_faults = list(faults or [])


# ----------------------------------------------------------------------
# results and engine selection
# ----------------------------------------------------------------------
@dataclass
class RunResult:
    """Structured outcome of a :func:`run`.

    ``steps`` counts executed ``step()`` calls under the module's unified
    convention; ``change_counts[t]`` is the number of nodes that changed in
    step ``t`` (for batched runs: the number of *replicas* that changed).
    ``rng_draws`` counts the random draws consumed (0 for deterministic
    automata).  Batched runs also populate ``replica_states`` /
    ``replica_rounds`` and report ``final_state = replica_states[0]``,
    ``steps = max(replica_rounds)``.  ``manifest`` is the
    :class:`~repro.runtime.telemetry.RunManifest` captured for this call —
    pass it to :func:`repro.runtime.telemetry.replay` to re-execute the
    run and assert a bitwise-identical outcome.
    """

    final_state: NetworkState
    steps: int
    engine: str
    converged: bool
    wall_time: float
    rng_draws: int
    change_counts: list[int]
    replica_states: Optional[list[NetworkState]] = None
    replica_rounds: Optional[np.ndarray] = None
    manifest: Optional[RunManifest] = None
    #: Resolved array-backend name for the array engines (``"numpy"``,
    #: ``"array-api"``, ``"numba"``…); ``None`` for the reference
    #: interpreter, which executes no array kernel.
    backend: Optional[str] = None


def _negotiate(
    automaton: Automaton, randomness: Optional[int]
) -> tuple[bool, str]:
    """Can the IR execute this automaton?  Returns ``(lowerable, reason)``.

    ``reason`` is the compiler's own explanation of the blocking capability
    when lowering fails (empty when it succeeds).  Lowering is cached, so
    negotiation costs one dict lookup after the first call.
    """
    try:
        lower(automaton, randomness)
        return True, ""
    except LoweringError as exc:
        return False, str(exc)


def supports_vectorized(
    automaton: Automaton, randomness: Optional[int] = None
) -> bool:
    """True iff ``automaton`` lowers to the shared engine IR — i.e. the
    vectorized/batched engines can execute it: a program mapping or a
    program-built :class:`FSSGA`/:class:`ProbabilisticFSSGA` (programs of
    any Theorem 3.7 form), or a rule-based automaton declaring
    ``compile_hints``."""
    return _negotiate(automaton, randomness)[0]


def _quotient_blocker(
    automaton: Automaton,
    net: Optional[Network],
    init,
    replicas: Optional[int],
    fault_plan: Optional[ChurnPlan],
    randomness: Optional[int],
    *,
    allow_probabilistic: bool,
) -> Optional[tuple[str, str]]:
    """Why this run cannot take the quotient path, or ``None`` if it can.

    Returns ``(blocker_tag, message)`` naming the *actual* obstruction —
    the same preconditions
    :class:`~repro.runtime.quotient.QuotientSynchronousEngine` re-checks
    at construction.  ``allow_probabilistic=False`` additionally blocks
    probabilistic automata: the quotient's shared per-orbit draws are a
    different stochastic process from the full-graph engines'
    one-draw-per-node convention (symmetry can never break), so ``auto``
    never switches a probabilistic run's semantics silently; opting in via
    ``engine="quotient"`` is explicit.
    """
    lowerable, reason = _negotiate(automaton, randomness)
    if not lowerable:
        return (
            "not-lowerable",
            f"the automaton does not lower to the engine IR: {reason}",
        )
    if replicas is not None:
        return (
            "replicas",
            f"replicas={replicas} needs the batched engine; the quotient "
            f"path is single-replica",
        )
    if fault_plan is not None and len(fault_plan) > 0:
        if getattr(fault_plan, "has_additions", False):
            return (
                "churn-plan",
                "churn plans break symmetry: an arrival (node-up/edge-up) "
                "changes the node or edge set, so no declared automorphism "
                "group can remain valid across the run",
            )
        return (
            "fault-plan",
            "fault plans break symmetry: a deletion distinguishes the "
            "faulted node's orbit members",
        )
    if net is None or net.symmetry is None:
        return (
            "no-group",
            "network declares no automorphism group; call "
            "net.declare_symmetry(...) to enable the quotient path",
        )
    if lower(automaton, randomness).probabilistic and not allow_probabilistic:
        return (
            "probabilistic",
            "shared per-orbit draws change the stochastic process (symmetry "
            "can never break), so auto keeps probabilistic runs on a "
            "full-graph engine; request engine='quotient' to opt in",
        )
    try:
        net.symmetry.verify(net)
    except SymmetryError as exc:
        return (
            "stale-group",
            f"declared automorphism group is stale for the current "
            f"topology: {exc}",
        )
    if not isinstance(init, Mapping):
        return (
            "init-form",
            f"quotient runs need a single NetworkState init, got "
            f"{type(init).__name__}",
        )
    part = net.orbit_partition()
    for v in net:
        rep = part.reps[part.orbit_of[v]]
        if init[v] != init[rep]:
            return (
                "init-not-orbit-constant",
                f"initial state is not orbit-constant: node {v!r} has state "
                f"{init[v]!r} but its orbit representative {rep!r} has "
                f"{init[rep]!r}",
            )
    return None


def _select_engine(
    engine: str,
    automaton: Automaton,
    replicas: Optional[int],
    fault_plan: Optional[ChurnPlan],
    randomness: Optional[int] = None,
    net: Optional[Network] = None,
    init=None,
) -> str:
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    lowerable, reason = _negotiate(automaton, randomness)
    if engine == "quotient":
        blocked = _quotient_blocker(
            automaton, net, init, replicas, fault_plan, randomness,
            allow_probabilistic=True,
        )
        if blocked is not None:
            tag, msg = blocked
            raise QuotientLoweringError(
                f"engine 'quotient' cannot execute this run: {msg}",
                blocker=tag,
            )
        chosen = "quotient"
    elif engine == "auto":
        if not lowerable:
            chosen = "reference"
        elif replicas is not None:
            chosen = "batched"
        elif (
            net is not None
            and net.symmetry is not None
            and _quotient_blocker(
                automaton, net, init, replicas, fault_plan, randomness,
                allow_probabilistic=False,
            )
            is None
        ):
            chosen = "quotient"
        else:
            chosen = "vectorized"
    else:
        chosen = engine
    if chosen in ("vectorized", "batched") and not lowerable:
        raise LoweringError(
            f"engine {chosen!r} cannot execute this automaton: {reason}"
        )
    if chosen == "batched" and replicas is None:
        raise ValueError("engine='batched' needs replicas=R")
    if chosen != "batched" and replicas is not None:
        # name the *actual* blocking capability: either the caller pinned a
        # non-batched engine, or the automaton does not lower (the compiler
        # says why) — never a guess based on unrelated arguments.
        blocker = (
            f"engine={chosen!r} was requested"
            if engine != "auto"
            else f"the automaton does not lower to the engine IR "
            f"(rule-based fallback: {reason})"
        )
        raise ValueError(
            f"replicas={replicas} needs the batched engine, but {blocker}"
        )
    return chosen


def _select_backend(
    backend: Union[str, ArrayBackend, None],
    chosen_engine: str,
    requested_engine: str,
) -> Optional[ArrayBackend]:
    """Resolve the ``backend=`` axis against the negotiated engine.

    The reference interpreter executes no array kernel, so a *pinned*
    backend (anything but ``"auto"``/``None``) on the reference path is an
    unsatisfiable request — a structured
    :class:`~repro.core.ir.BackendLoweringError` with blocker
    ``"reference-engine"`` names it, whether the caller pinned
    ``engine="reference"`` or ``engine="auto"`` fell back because the
    automaton does not lower.  Array engines resolve through
    :func:`repro.runtime.backends.resolve_backend` (which raises the
    ``"numba-unavailable"`` blocker for a pinned-but-missing JIT backend).
    Returns the live backend, or ``None`` on the reference path.
    """
    pinned = backend is not None and backend != "auto"
    if chosen_engine == "reference":
        if pinned:
            name = backend.name if isinstance(backend, ArrayBackend) else backend
            how = (
                "engine='reference' was requested"
                if requested_engine == "reference"
                else "engine='auto' fell back to the reference interpreter "
                "(the automaton does not lower to the engine IR)"
            )
            raise BackendLoweringError(
                f"backend {name!r} was pinned but {how}; the reference "
                f"interpreter executes no array kernel, so the pinned "
                f"backend cannot take effect",
                blocker="reference-engine",
            )
        return None
    return resolve_backend(backend)


def _as_reference_automaton(
    automaton: Automaton, randomness: Optional[int]
) -> Union[FSSGA, ProbabilisticFSSGA]:
    """The reference simulator needs an automaton object.

    Anything that lowers executes its compiled form
    (:meth:`~repro.core.ir.CompiledAutomaton.as_automaton`, result-only
    states padded with hold programs), so all three engines run the very
    same IR-derived programs; only automata the compiler rejects run their
    raw Python rule."""
    try:
        return lower(automaton, randomness).as_automaton()
    except LoweringError:
        if isinstance(automaton, (FSSGA, ProbabilisticFSSGA)):
            return automaton
        raise


# ----------------------------------------------------------------------
# the unified step driver
# ----------------------------------------------------------------------
def _drive(
    step_once: Callable[[], bool],
    current_state: Callable[[], NetworkState],
    quiescent_ok: Callable[[], bool],
    until: Until,
    max_steps: int,
) -> tuple[int, bool]:
    """Run ``step_once`` under the unified termination policy; returns
    ``(steps_executed, converged)``.  ``step_once`` returns whether any
    node changed."""
    if isinstance(until, bool):
        raise TypeError("until must be an int, 'stable', or a predicate")
    if isinstance(until, int):
        if until < 0:
            raise ValueError("until must be >= 0")
        for _ in range(until):
            step_once()
        return until, True
    if until == "stable":
        for steps in range(1, max_steps + 1):
            if not step_once() and quiescent_ok():
                return steps, True
        raise RuntimeError(f"no fixed point within {max_steps} steps")
    if callable(until):
        for steps in range(max_steps):
            if until(current_state()):
                return steps, True
            step_once()
        if until(current_state()):
            return max_steps, True
        raise RuntimeError(f"predicate not reached within {max_steps} steps")
    raise TypeError(f"until must be an int, 'stable', or a predicate; got {until!r}")


def _run_reference(
    automaton, net, init, until, max_steps, randomness, rng, fault_plan,
    observers, metrics,
):
    automaton = _as_reference_automaton(automaton, randomness)
    capture = _FaultCapture()
    sim = SynchronousSimulator(
        net, automaton, init, rng=rng, fault_plan=fault_plan, trace=capture,
        metrics=metrics,
    )
    probabilistic = isinstance(automaton, ProbabilisticFSSGA)
    draws = [0]
    change_counts: list[int] = []

    def step_once() -> bool:
        changes = sim.step()
        if probabilistic:
            draws[0] += len(sim.net)
        change_counts.append(len(changes))
        for ob in observers:
            ob.on_step(sim.time - 1, changes, capture.last_faults)
        return bool(changes)

    def quiescent_ok() -> bool:
        return fault_plan is None or fault_plan.exhausted

    steps, converged = _drive(
        step_once, lambda: sim.state, quiescent_ok, until, max_steps
    )
    return sim.state, steps, converged, draws[0], change_counts, None, None


def _run_vectorized(
    automaton, net, init, until, max_steps, randomness, rng, fault_plan,
    observers, metrics, backend,
):
    eng = VectorizedSynchronousEngine(
        net, automaton, init, randomness=randomness, rng=rng,
        fault_plan=fault_plan, metrics=metrics, backend=backend,
    )
    draws = [0]
    change_counts: list[int] = []

    def step_once() -> bool:
        old = eng._sigma  # step() replaces the array; this snapshot stays valid
        changed = eng.step()
        if eng._probabilistic:
            draws[0] += eng.live_count  # one draw per live node, as reference
        diff = np.flatnonzero(eng._sigma != old)
        change_counts.append(len(diff))
        if observers:
            changes = {
                eng._order[i]: (eng.alphabet[old[i]], eng.alphabet[eng._sigma[i]])
                for i in diff
            }
            for ob in observers:
                ob.on_step(eng.time - 1, changes, eng.last_faults)
        return changed

    def quiescent_ok() -> bool:
        return fault_plan is None or fault_plan.exhausted

    steps, converged = _drive(
        step_once, lambda: eng.state, quiescent_ok, until, max_steps
    )
    return eng.state, steps, converged, draws[0], change_counts, None, None


def _run_quotient(
    automaton, net, init, until, max_steps, randomness, rng, fault_plan,
    observers, metrics, backend,
):
    eng = QuotientSynchronousEngine(
        net, automaton, init, randomness=randomness, rng=rng,
        fault_plan=fault_plan, metrics=metrics, backend=backend,
    )
    part = eng.partition
    sizes = np.asarray(part.sizes, dtype=np.int64)
    members: Optional[list[list]] = None
    if observers:
        members = [[] for _ in part.reps]
        for v, j in part.orbit_of.items():
            members[j].append(v)
    draws = [0]
    change_counts: list[int] = []

    def step_once() -> bool:
        old = eng._sigma  # step() replaces the array; this snapshot stays valid
        changed = eng.step()
        if eng._probabilistic:
            draws[0] += eng.orbit_count  # one shared draw per orbit
        diff = np.flatnonzero(eng._sigma != old)
        # lifted change count: every member of a changed orbit changed, so
        # this equals the full-graph engines' per-step counts exactly
        change_counts.append(int(sizes[diff].sum()))
        if observers:
            changes = {}
            for i in diff:
                pair = (eng.alphabet[old[i]], eng.alphabet[eng._sigma[i]])
                for v in members[i]:
                    changes[v] = pair
            for ob in observers:
                ob.on_step(eng.time - 1, changes, eng.last_faults)
        return changed

    steps, converged = _drive(
        step_once, lambda: eng.state, lambda: True, until, max_steps
    )
    return eng.state, steps, converged, draws[0], change_counts, None, None


def _run_batched(
    automaton, net, init, until, max_steps, replicas, randomness, rng,
    fault_plan, observers, metrics, backend,
):
    eng = BatchedSynchronousEngine(
        net, automaton, init, replicas, randomness=randomness, rng=rng,
        fault_plan=fault_plan, metrics=metrics, backend=backend,
    )
    draws = [0]
    change_counts: list[int] = []

    def step_once() -> np.ndarray:
        active_before = int(eng._active.sum())
        changed = eng.step()
        if eng._probabilistic:
            # live_count reflects faults fired at the top of this step
            draws[0] += active_before * eng.live_count
        change_counts.append(int(changed.sum()))
        if observers:
            rep_changes = {int(r): True for r in np.flatnonzero(changed)}
            for ob in observers:
                ob.on_step(eng.time - 1, rep_changes, eng.last_faults)
        return changed

    if isinstance(until, bool):
        raise TypeError("until must be an int, 'stable', or a predicate")
    if isinstance(until, int):
        if until < 0:
            raise ValueError("until must be >= 0")
        for _ in range(until):
            step_once()
        converged = True
    elif until == "stable":
        # mirror BatchedSynchronousEngine.run_until_stable: a replica is
        # deactivated after its first no-change step (which is counted),
        # but never while fault events are still pending.
        for _ in range(max_steps):
            if not eng._active.any():
                break
            changed = step_once()
            if fault_plan is None or fault_plan.exhausted:
                eng._active &= changed
        if eng._active.any():
            raise RuntimeError(
                f"{int(eng._active.sum())}/{eng.replicas} replicas reached "
                f"no fixed point within {max_steps} steps"
            )
        converged = True
    elif callable(until):
        # predicate checked before each step, per replica; satisfied
        # replicas deactivate and stop evolving/drawing.
        for remaining in range(max_steps, -1, -1):
            for r in np.flatnonzero(eng._active):
                if until(eng.replica_state(int(r))):
                    eng._active[r] = False
            if not eng._active.any():
                break
            if remaining == 0:
                raise RuntimeError(
                    f"{int(eng._active.sum())}/{eng.replicas} replicas did "
                    f"not satisfy the predicate within {max_steps} steps"
                )
            step_once()
        converged = True
    else:
        raise TypeError(
            f"until must be an int, 'stable', or a predicate; got {until!r}"
        )

    states = eng.states
    rounds = eng.rounds
    return (
        states[0],
        int(rounds.max()),
        converged,
        draws[0],
        change_counts,
        states,
        rounds,
    )


# ----------------------------------------------------------------------
# the front door
# ----------------------------------------------------------------------
def run(
    automaton: Automaton,
    net: Network,
    init: Union[NetworkState, list],
    *,
    engine: str = "auto",
    until: Until = "stable",
    max_steps: int = DEFAULT_MAX_STEPS,
    replicas: Optional[int] = None,
    randomness: Optional[int] = None,
    rng: Union[int, np.random.Generator, None] = None,
    fault_plan: Optional[ChurnPlan] = None,
    observers: tuple = (),
    metrics: Optional[MetricsRegistry] = None,
    backend: Union[str, ArrayBackend, None] = "auto",
) -> RunResult:
    """Execute ``automaton`` on ``net`` from ``init`` on the best engine.

    Parameters
    ----------
    automaton:
        :class:`FSSGA` / :class:`ProbabilisticFSSGA` (rule- or
        program-based), or a raw ``{q: ModThreshProgram}`` /
        ``{(q, i): ModThreshProgram}`` mapping (the latter with
        ``randomness``).
    engine:
        ``"auto"`` (default — fastest applicable), ``"reference"``,
        ``"vectorized"``, ``"batched"`` (requires ``replicas``), or
        ``"quotient"`` (requires a declared automorphism group and an
        orbit-constant init; raises
        :class:`~repro.core.ir.QuotientLoweringError` naming the blocker
        otherwise).
    until:
        Termination: an int (fixed steps), ``"stable"`` (fixed point), or
        a ``NetworkState -> bool`` predicate.  See the module docstring for
        the step-count convention.
    replicas:
        R independent replicas via the batched engine.  ``init`` may then
        be one shared state or a list of R states.
    fault_plan:
        Mid-run topology dynamics: a deletion-only
        :class:`~repro.runtime.faults.FaultPlan` or a general
        :class:`~repro.runtime.churn.ChurnPlan` mixing ``node-down`` /
        ``edge-down`` / ``node-up`` / ``edge-up`` events.  Lowered into
        per-step live-node masks on the vectorized/batched engines
        (plans that add topology lower their *union* topology into the
        construction-time CSR, so churn stays on the vector fast path),
        interpreted directly on the reference engine — all with
        identical semantics (``net`` is mutated as events fire, exactly
        as the reference simulator does).  The quotient engine rejects
        any non-empty plan with a structured blocker (``"churn-plan"``
        when the plan adds topology, ``"fault-plan"`` otherwise).
    observers:
        :class:`StepObserver` instances notified per executed step.
    metrics:
        Optional :class:`~repro.runtime.telemetry.MetricsRegistry` wired
        into the chosen engine's hot loop (``steps``, ``node_updates``,
        ``rng_draws``, ``fault_events``, and for batched runs the
        ``active_fraction`` series) plus per-run cache counters
        (``lowering_cache_hits``/``misses``, ``csr_rebuilds``).  ``None``
        (default) keeps the hot loops branch-only.
    backend:
        Which :class:`~repro.runtime.backends.ArrayBackend` executes the
        array engines' step kernel: ``"auto"`` (numpy, the bitwise
        reference), ``"numpy"``, ``"array-api"``, ``"numba"``, or a live
        backend instance.  Orthogonal to ``engine``: every array engine
        accepts every backend, all bitwise-identical.  A pinned backend
        that cannot run raises
        :class:`~repro.core.ir.BackendLoweringError` with a
        machine-readable ``blocker`` (``"numba-unavailable"`` when the
        JIT backend is pinned without numba installed,
        ``"reference-engine"`` when the run lands on the reference
        interpreter, which executes no array kernel).  The resolved name
        is recorded on the result and its manifest, so
        :func:`~repro.runtime.telemetry.replay` re-pins it.
    """
    observers = tuple(observers)
    cache_before = lowering_cache_info() if metrics is not None else None
    csr_before = net.csr_rebuilds if metrics is not None else 0
    chosen = _select_engine(
        engine, automaton, replicas, fault_plan, randomness, net, init
    )
    backend_obj = _select_backend(backend, chosen, engine)
    backend_name = backend_obj.name if backend_obj is not None else None
    # captured before the engine consumes rng or faults mutate net — both
    # are snapshotted by value inside the manifest
    manifest = capture_manifest(
        automaton=automaton, net=net, init=init, engine=chosen, until=until,
        max_steps=max_steps, replicas=replicas, randomness=randomness,
        rng=rng, fault_plan=fault_plan, backend=backend_name,
    )
    if fault_plan is not None:
        fault_plan.ensure_fresh()  # cursor contract: full schedule re-applies
    start = perf_counter()
    for ob in observers:
        ob.on_run_start(net, init if isinstance(init, NetworkState) else init[0])
    if chosen == "reference":
        out = _run_reference(
            automaton, net, init, until, max_steps, randomness, rng, fault_plan,
            observers, metrics,
        )
    elif chosen == "vectorized":
        out = _run_vectorized(
            automaton, net, init, until, max_steps, randomness, rng, fault_plan,
            observers, metrics, backend_obj,
        )
    elif chosen == "quotient":
        out = _run_quotient(
            automaton, net, init, until, max_steps, randomness, rng, fault_plan,
            observers, metrics, backend_obj,
        )
    else:
        out = _run_batched(
            automaton, net, init, until, max_steps, replicas, randomness, rng,
            fault_plan, observers, metrics, backend_obj,
        )
    final_state, steps, converged, draws, change_counts, states, rounds = out
    wall_time = perf_counter() - start
    if metrics is not None:
        cache_after = lowering_cache_info()
        metrics.inc(
            "lowering_cache_hits", cache_after["hits"] - cache_before["hits"]
        )
        metrics.inc(
            "lowering_cache_misses",
            cache_after["misses"] - cache_before["misses"],
        )
        metrics.inc("csr_rebuilds", net.csr_rebuilds - csr_before)
        metrics.observe("run_wall_time", wall_time)
    result = RunResult(
        final_state=final_state,
        steps=steps,
        engine=chosen,
        converged=converged,
        wall_time=wall_time,
        rng_draws=draws,
        change_counts=change_counts,
        replica_states=states,
        replica_rounds=rounds,
        manifest=manifest,
        backend=backend_name,
    )
    manifest.finalize(result)
    for ob in observers:
        ob.on_run_end(result)
    return result
