"""Decreasing benign faults (paper, Section 1).

A fault permanently deletes a node or an edge; nothing ever joins the
network and there is no malicious behaviour.  A :class:`FaultPlan` is a
time-ordered list of :class:`FaultEvent`; simulators apply all events due at
time ``t`` *before* computing step ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional, Union

import numpy as np

from repro.network.graph import Network, Node
from repro.network.state import NetworkState

__all__ = ["FaultEvent", "FaultPlan", "random_fault_plan"]


@dataclass(frozen=True)
class FaultEvent:
    """One deletion: ``kind`` is ``"node"`` or ``"edge"``.

    For node faults ``target`` is the node id; for edge faults it is the
    ``(u, v)`` pair.  ``time`` is the synchronous step (or asynchronous
    activation index) at which the fault strikes.
    """

    time: int
    kind: Literal["node", "edge"]
    target: object

    def applies_to(self, net: Network) -> bool:
        """True iff the target still exists (faults can be preempted by
        earlier faults, e.g. an edge fault after an endpoint died)."""
        if self.kind == "node":
            return self.target in net
        u, v = self.target
        return net.has_edge(u, v)

    def apply(self, net: Network, state: Optional[NetworkState] = None) -> bool:
        """Apply the deletion; returns False if the target was already gone."""
        if not self.applies_to(net):
            return False
        if self.kind == "node":
            net.remove_node(self.target)
            if state is not None:
                state.drop([self.target])
        else:
            u, v = self.target
            net.remove_edge(u, v)
        return True


class FaultPlan:
    """A time-ordered schedule of fault events.

    A plan is a *stateful cursor* over its events: :meth:`apply_due`
    advances it, so a consumed plan applies nothing on a second pass.  The
    engines and :func:`repro.runtime.api.run` therefore auto-:meth:`reset`
    a plan that was already :attr:`consumed` at construction/entry — reusing
    one plan across several runs re-applies the full schedule each time
    (sweep helpers relied on the silent no-op never happening; now it
    can't).  Note that the events themselves are immutable: resetting
    re-applies the same schedule, it does not resurrect deleted topology —
    run each execution on a fresh copy of the network.
    """

    def __init__(self, events: Optional[list[FaultEvent]] = None) -> None:
        self._events: list[FaultEvent] = sorted(
            events or [], key=lambda e: e.time
        )
        self._cursor = 0
        self.applied: list[FaultEvent] = []
        self.skipped: list[FaultEvent] = []

    @classmethod
    def node_faults(cls, schedule: dict[int, Node]) -> "FaultPlan":
        """Convenience: ``{time: node}`` → plan."""
        return cls([FaultEvent(t, "node", v) for t, v in schedule.items()])

    @classmethod
    def edge_faults(cls, schedule: dict[int, tuple]) -> "FaultPlan":
        """Convenience: ``{time: (u, v)}`` → plan."""
        return cls([FaultEvent(t, "edge", e) for t, e in schedule.items()])

    def events(self) -> list[FaultEvent]:
        return list(self._events)

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._events)

    @property
    def consumed(self) -> bool:
        """True once any event has been cursor-passed (applied or skipped)."""
        return self._cursor > 0

    def apply_due(
        self, net: Network, time: int, state: Optional[NetworkState] = None
    ) -> list[FaultEvent]:
        """Apply every not-yet-applied event with ``event.time <= time``.

        Returns the events that actually deleted something.  Events whose
        target already vanished are recorded in :attr:`skipped`.
        """
        fired: list[FaultEvent] = []
        while self._cursor < len(self._events) and self._events[self._cursor].time <= time:
            ev = self._events[self._cursor]
            self._cursor += 1
            if ev.apply(net, state):
                fired.append(ev)
                self.applied.append(ev)
            else:
                self.skipped.append(ev)
        return fired

    def reset(self) -> None:
        """Rewind the plan for a fresh execution."""
        self._cursor = 0
        self.applied = []
        self.skipped = []

    def __len__(self) -> int:
        return len(self._events)


def random_fault_plan(
    net: Network,
    num_faults: int,
    max_time: int,
    rng: Union[int, np.random.Generator, None] = None,
    kinds: tuple[str, ...] = ("node", "edge"),
    protect: tuple = (),
) -> FaultPlan:
    """A random fault plan over the current topology.

    ``protect`` lists nodes that may never be deleted (and whose incident
    edges are also spared) — useful for keeping an algorithm's critical
    nodes alive, per the Section 2 sensitivity definition.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    protected = set(protect)
    node_pool = [v for v in net.nodes() if v not in protected]
    edge_pool = [
        (u, v) for u, v in net.edges() if u not in protected and v not in protected
    ]
    events: list[FaultEvent] = []
    for _ in range(num_faults):
        kind = kinds[int(gen.integers(len(kinds)))]
        time = int(gen.integers(0, max_time + 1))
        if kind == "node" and node_pool:
            idx = int(gen.integers(len(node_pool)))
            events.append(FaultEvent(time, "node", node_pool.pop(idx)))
        elif kind == "edge" and edge_pool:
            idx = int(gen.integers(len(edge_pool)))
            events.append(FaultEvent(time, "edge", edge_pool.pop(idx)))
    return FaultPlan(events)
