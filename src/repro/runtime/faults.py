"""Decreasing benign faults (paper, Section 1) — the deletion-only plan.

A fault permanently deletes a node or an edge; nothing joins the network
and there is no malicious behaviour.  A :class:`FaultPlan` is a
time-ordered list of :class:`FaultEvent`; simulators apply all events due
at time ``t`` *before* computing step ``t``.

Since the topology-dynamics generalization, :class:`FaultPlan` is the
deletion-only subclass of :class:`~repro.runtime.churn.ChurnPlan` — the
historical name and constructors are unchanged, and a ``FaultEvent``'s
``"node"``/``"edge"`` kinds are the legacy spellings of the churn layer's
``node-down``/``edge-down``.  Schedules that also *add* topology (regional
recovery, growth) live in :mod:`repro.runtime.churn`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Literal, Optional, Union

import numpy as np

from repro.network.graph import Network, Node
from repro.network.state import NetworkState
from repro.runtime.churn import ChurnPlan

__all__ = ["FaultEvent", "FaultPlan", "random_fault_plan"]


@dataclass(frozen=True)
class FaultEvent:
    """One deletion: ``kind`` is ``"node"`` or ``"edge"``.

    For node faults ``target`` is the node id; for edge faults it is the
    ``(u, v)`` pair.  ``time`` is the synchronous step (or asynchronous
    activation index) at which the fault strikes.  These kinds are the
    legacy spellings of the churn layer's ``node-down``/``edge-down``, so
    fault events mix freely with
    :class:`~repro.runtime.churn.TopologyEvent` in one plan.
    """

    time: int
    kind: Literal["node", "edge"]
    target: object

    def applies_to(self, net: Network) -> bool:
        """True iff the target still exists (faults can be preempted by
        earlier faults, e.g. an edge fault after an endpoint died)."""
        if self.kind == "node":
            return self.target in net
        u, v = self.target
        return net.has_edge(u, v)

    def apply(self, net: Network, state: Optional[NetworkState] = None) -> bool:
        """Apply the deletion; returns False if the target was already gone."""
        if not self.applies_to(net):
            return False
        if self.kind == "node":
            net.remove_node(self.target)
            if state is not None:
                state.drop([self.target])
        else:
            u, v = self.target
            net.remove_edge(u, v)
        return True


def _pairs(schedule) -> list[tuple]:
    """``{time: target}`` or ``[(time, target), …]`` → a pair list.

    The dict form predates the churn layer and cannot express two faults
    at the same step (keys are unique); both forms are accepted, and the
    list form preserves same-time ordering (plan sorting is stable).
    """
    if isinstance(schedule, Mapping):
        return list(schedule.items())
    return [(t, target) for t, target in schedule]


class FaultPlan(ChurnPlan):
    """A time-ordered schedule of deletion events.

    The stateful-cursor semantics (``apply_due`` advances it; engines
    auto-``reset`` a plan already ``consumed`` at construction; resetting
    re-applies the schedule but never resurrects deleted topology) are
    inherited from :class:`~repro.runtime.churn.ChurnPlan` — see that
    class for the full contract.  This subclass exists for the historical
    name and the deletion-only convenience constructors; it accepts any
    event the churn layer accepts.
    """

    @classmethod
    def node_faults(
        cls, schedule: Union[dict[int, Node], list[tuple[int, Node]]]
    ) -> "FaultPlan":
        """Convenience: ``{time: node}`` or ``[(time, node), …]`` → plan.

        The list form allows several faults at the same step (the dict
        form cannot — its keys are unique) and keeps their given order.
        """
        return cls([FaultEvent(t, "node", v) for t, v in _pairs(schedule)])

    @classmethod
    def edge_faults(
        cls, schedule: Union[dict[int, tuple], list[tuple[int, tuple]]]
    ) -> "FaultPlan":
        """Convenience: ``{time: (u, v)}`` or ``[(time, (u, v)), …]`` → plan."""
        return cls([FaultEvent(t, "edge", e) for t, e in _pairs(schedule)])


def random_fault_plan(
    net: Network,
    num_faults: int,
    max_time: int,
    rng: Union[int, np.random.Generator, None] = None,
    kinds: tuple[str, ...] = ("node", "edge"),
    protect: tuple = (),
) -> FaultPlan:
    """A random fault plan over the current topology.

    ``rng`` accepts a :class:`numpy.random.Generator` (used as-is) *or*
    an int seed (``None`` seeds from entropy); equal seeds give identical
    plans, so a sweep can reproduce its schedules from recorded seeds
    alone.  ``protect`` lists nodes that may never be deleted (and whose
    incident edges are also spared) — useful for keeping an algorithm's
    critical nodes alive, per the Section 2 sensitivity definition.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    protected = set(protect)
    node_pool = [v for v in net.nodes() if v not in protected]
    edge_pool = [
        (u, v) for u, v in net.edges() if u not in protected and v not in protected
    ]
    events: list[FaultEvent] = []
    for _ in range(num_faults):
        kind = kinds[int(gen.integers(len(kinds)))]
        time = int(gen.integers(0, max_time + 1))
        if kind == "node" and node_pool:
            idx = int(gen.integers(len(node_pool)))
            events.append(FaultEvent(time, "node", node_pool.pop(idx)))
        elif kind == "edge" and edge_pool:
            idx = int(gen.integers(len(edge_pool)))
            events.append(FaultEvent(time, "edge", edge_pool.pop(idx)))
    return FaultPlan(events)
