"""Batched multi-replica vectorized engine over the shared compiler IR.

The paper's probabilistic results — randomized leader election terminating
in O(n log n) expected rounds (Section 4.7), Flajolet–Martin census
accuracy (Section 1) — are statements about *distributions over runs*, so
EXPERIMENTS-grade statistics need many independent replicas of the same
automaton on the same network.  Simulating them one at a time repays the
per-step Python overhead R times; this engine evolves all R replicas in one
stacked numpy computation per step:

* state is an ``(R, n)`` int array;
* neighbour counts for every replica come from **one** sparse mat-mat
  product — the per-replica one-hot matrices are stacked horizontally into
  an ``(n, R·s)`` block matrix ``H`` with ``H[v, r·s + σ_r(v)] = 1``, so
  ``A @ H`` yields all R count tables at once, reshaped to ``(R, n, s)``;
* the automaton executes as a :class:`~repro.core.ir.CompiledAutomaton`
  (anything :func:`repro.core.ir.lower` accepts), its clause cascades
  resolving across all replicas simultaneously through the shared
  :class:`~repro.runtime.backends.ArrayBackend` step kernel (one kernel
  for every engine, so the engines cannot drift);
* each replica draws from its **own** ``np.random.Generator``, spawned
  from the master seed via :meth:`numpy.random.Generator.spawn` — replica
  ``i`` is bitwise identical to a single-replica
  :class:`~repro.runtime.vectorized.VectorizedSynchronousEngine` run seeded
  with the matching spawned child (``np.random.default_rng(seed).spawn(R)[i]``);
* per-replica quiescence/termination masks deactivate converged replicas,
  so finished runs stop paying for steps (and stop consuming randomness);
* an optional :class:`~repro.runtime.churn.ChurnPlan` (or its
  deletion-only :class:`~repro.runtime.faults.FaultPlan` subclass) is
  lowered into live-node masks shared by every replica: one topology
  trajectory, R independent random executions over it — the shape of a
  sensitivity churn sweep.  Plans that add topology lower their union
  topology into the construction-time CSR exactly as the vectorized
  engine does, and arriving nodes boot in their event's declared state
  across all replicas.

The high-level :func:`run_replicas` wraps construction + termination and
returns per-replica final states and round counts.  Cross-engine
equivalence is property-tested in
``tests/runtime/test_engine_conformance.py``; throughput against R
sequential vectorized runs is measured in ``benchmarks/bench_batched.py``
(experiment E17).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Callable, NamedTuple, Optional, Union

import numpy as np

from repro.core.automaton import FSSGA, ProbabilisticFSSGA
from repro.core.ir import CompiledAutomaton, lower
from repro.network.graph import Network
from repro.network.state import NetworkState
from repro.runtime.backends import (
    DEFAULT_MAX_STEPS,
    ArrayBackend,
    resolve_backend,
)
from repro.runtime.churn import ChurnPlan, count_down_events
from repro.runtime.telemetry import MetricsRegistry
from repro.runtime.vectorized import (
    _build_churn_mask,
    _FaultMask,
    _lowered_topology,
)

__all__ = ["BatchedSynchronousEngine", "BatchedRunResult", "run_replicas"]

#: Per-replica termination predicate: ``stop(state_counts_dict) -> bool``.
StopPredicate = Callable[[dict], bool]


class BatchedRunResult(NamedTuple):
    """Outcome of :func:`run_replicas`.

    ``rounds[i]`` is the number of synchronous steps replica ``i`` actually
    executed; ``converged[i]`` tells whether it was deactivated by its
    termination condition (fixed point or ``stop``) rather than by the step
    budget.
    """

    final_states: list[NetworkState]
    rounds: np.ndarray
    converged: np.ndarray
    state_counts: list[dict]


class BatchedSynchronousEngine:
    """R independent replicas of one automaton, evolved in lockstep.

    Parameters
    ----------
    net:
        The shared network.  With a ``fault_plan`` it is mutated exactly as
        the reference simulator would mutate it (events fire before the
        step whose time has arrived); every replica sees the same fault
        trajectory.
    programs:
        Anything :func:`repro.core.ir.lower` accepts: ``{q:
        ModThreshProgram}`` / ``{(q, i): ModThreshProgram}`` (then
        ``randomness`` is required), an :class:`FSSGA` /
        :class:`ProbabilisticFSSGA` built from programs of any Theorem 3.7
        form, a rule-based automaton declaring ``compile_hints``, or a
        pre-lowered :class:`~repro.core.ir.CompiledAutomaton`.
    init:
        One :class:`NetworkState` shared by every replica, or a sequence of
        ``replicas`` per-replica initial states.
    replicas:
        R.  May be omitted when ``init`` is a sequence (its length is used).
    randomness:
        ``r`` of Definition 3.11 for probabilistic program dicts.
    rng:
        Master seed or Generator — per-replica streams are spawned from it —
        or an explicit sequence of R Generators (one per replica), used
        verbatim (this is how the conformance tests share a stream with a
        single-replica engine).
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan` or
        :class:`~repro.runtime.churn.ChurnPlan` lowered into per-step
        live-node masks shared by all replicas.  Plans that add topology
        (``node-up`` / ``edge-up``) lower the plan's *union* topology
        into the construction-time CSR with not-yet-arrived entries
        masked dead; every ``node-up`` boot state must belong to the
        automaton alphabet.  A plan whose cursor was already consumed by
        a previous run is auto-reset.
    metrics:
        Optional :class:`~repro.runtime.telemetry.MetricsRegistry`
        receiving the engine-agnostic counters plus the per-step
        ``active_fraction`` series (quiescence-mask density).  The
        resolved backend name is recorded as the ``backend`` tag.
    backend:
        Which :class:`~repro.runtime.backends.ArrayBackend` executes the
        stacked counts → atoms → cascades hot loop (``"auto"`` = numpy,
        the bitwise reference; see
        :func:`repro.runtime.backends.resolve_backend`).
    """

    def __init__(
        self,
        net: Network,
        programs: Union[Mapping, FSSGA, ProbabilisticFSSGA, CompiledAutomaton],
        init: Union[NetworkState, Sequence[NetworkState]],
        replicas: Optional[int] = None,
        randomness: Optional[int] = None,
        rng: Union[int, np.random.Generator, Sequence[np.random.Generator], None] = None,
        fault_plan: Optional[ChurnPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        backend: Union[str, ArrayBackend, None] = "auto",
    ) -> None:
        self._ir = lower(programs, randomness)
        self._probabilistic = self._ir.probabilistic
        self.randomness = self._ir.randomness
        self.alphabet: list = list(self._ir.alphabet)
        self._code = dict(self._ir.code)
        self._programs = dict(self._ir.source_programs)

        inits = self._normalize_init(init, replicas)
        self.replicas = len(inits)

        if fault_plan is not None:
            fault_plan.ensure_fresh()  # cursor contract: full schedule re-applies
        self.fault_plan = fault_plan

        self._net = net
        self.adjacency, self._order = _lowered_topology(net, fault_plan)
        self._n = len(self._order)
        self._degrees = np.asarray(self.adjacency.sum(axis=1)).ravel()
        self.rngs = self._spawn_streams(rng, self.replicas)
        self.time = 0

        sigma = np.empty((self.replicas, self._n), dtype=np.int64)
        for r, state in enumerate(inits):
            for idx, v in enumerate(self._order):
                # not-yet-arrived union rows hold a placeholder until
                # their node-up event scatters the boot state in
                sigma[r, idx] = self._code[state[v]] if v in net else 0
        self._sigma = sigma

        self._active = np.ones(self.replicas, dtype=bool)
        self._rounds = np.zeros(self.replicas, dtype=np.int64)

        self.backend = resolve_backend(backend)
        self.metrics = metrics
        if metrics is not None:
            metrics.set_tag("backend", self.backend.name)
        self.last_faults: list = []
        self._pos0 = {v: i for i, v in enumerate(self._order)}
        self._fault_mask: Optional[_FaultMask] = None
        self._live_pos: Optional[np.ndarray] = None  # None ⇒ no fault yet
        self._live_adj = self.adjacency
        self._live_deg = self._degrees
        if fault_plan is not None and fault_plan.has_additions:
            # arrivals need the eager mask: the t = 0 live view must
            # already exclude not-yet-arrived rows and dead edge entries
            self._fault_mask = _build_churn_mask(
                net, fault_plan, self.adjacency, self._pos0, self._code
            )
            self._live_pos, self._live_adj, self._live_deg = (
                self._fault_mask.live_view()
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _normalize_init(
        init: Union[NetworkState, Sequence[NetworkState]],
        replicas: Optional[int],
    ) -> list[NetworkState]:
        if isinstance(init, NetworkState):
            if replicas is None or replicas < 1:
                raise ValueError("a shared init needs replicas >= 1")
            return [init] * replicas
        inits = list(init)
        if not inits:
            raise ValueError("need at least one replica")
        if replicas is not None and replicas != len(inits):
            raise ValueError(
                f"replicas={replicas} but {len(inits)} initial states given"
            )
        return inits

    @staticmethod
    def _spawn_streams(rng, replicas: int) -> list[np.random.Generator]:
        if isinstance(rng, (Sequence, list, tuple)) and not isinstance(rng, (str, bytes)):
            streams = list(rng)
            if len(streams) != replicas:
                raise ValueError(
                    f"{len(streams)} generators given for {replicas} replicas"
                )
            if not all(isinstance(g, np.random.Generator) for g in streams):
                raise TypeError("explicit streams must be numpy Generators")
            return streams
        master = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        return master.spawn(replicas)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Column count of the lowered topology: the construction-time
        node count, plus any not-yet-arrived union rows when the plan
        adds topology (dead and unarrived nodes keep their columns)."""
        return self._n

    @property
    def live_count(self) -> int:
        """Nodes currently alive (== rng draws per replica per step)."""
        return self._n if self._live_pos is None else len(self._live_pos)

    @property
    def active(self) -> np.ndarray:
        """Copy of the per-replica liveness mask (False = converged/stopped)."""
        return self._active.copy()

    @property
    def rounds(self) -> np.ndarray:
        """Per-replica count of synchronous steps actually executed."""
        return self._rounds.copy()

    def _refresh_topology(self, fired: list) -> None:
        """Fold fired topology events into the incremental live masks."""
        if self._fault_mask is None:
            self._fault_mask = _FaultMask(self.adjacency, self._pos0)
        boots = self._fault_mask.apply(fired)
        for i, q in boots:
            # an arriving node boots in its event's declared state, in
            # every replica (the topology trajectory is shared)
            self._sigma[:, i] = self._code[q]
        self._live_pos, self._live_adj, self._live_deg = (
            self._fault_mask.live_view()
        )

    def step(self) -> np.ndarray:
        """One synchronous step for every active replica.

        Returns a boolean ``(R,)`` array: True where that replica changed
        state this step.  Inactive replicas do not evolve, do not draw
        randomness, and report False.  Due fault events fire (once, shared
        by all replicas) before the state update, matching the reference
        simulator's application order.
        """
        self.last_faults = []
        if self.fault_plan is not None:
            fired = self.fault_plan.apply_due(self._net, self.time)
            if fired:
                self.last_faults = fired
                self._refresh_topology(fired)
        act = np.flatnonzero(self._active)
        changed = np.zeros(self.replicas, dtype=bool)
        self.time += 1
        met = self.metrics
        if met is not None:
            met.inc("steps")
            # quiescence-mask density: fraction of replicas still evolving
            met.observe("active_fraction", act.size / self.replicas)
            if self.last_faults:
                downs = count_down_events(self.last_faults)
                if downs:
                    met.inc("fault_events", downs)
                met.inc("churn_events", len(self.last_faults))
        if act.size == 0:
            return changed
        if self._live_pos is None:
            sig = self._sigma[act]
        else:
            sig = self._sigma[np.ix_(act, self._live_pos)]
        m = sig.shape[1]
        adj = self.adjacency if self._live_pos is None else self._live_adj
        live = self._live_deg > 0
        if self._probabilistic:
            # per-replica streams, each drawn in the vectorized engine's
            # per-node order, so replica i matches a solo run bitwise
            draws = np.empty_like(sig)
            for j, r in enumerate(act):
                draws[j] = self.backend.draw(self.rngs[r], self.randomness, m)
        else:
            draws = None
        new_sig = self.backend.step(adj, sig, live, draws, self._ir)
        changed[act] = (new_sig != sig).any(axis=1)
        if met is not None:
            # state-cell changes: at R = 1 this equals the vectorized count
            met.inc("node_updates", self.backend.updates(new_sig, sig))
            if self._probabilistic:
                met.inc("rng_draws", act.size * m)
        if self._live_pos is None:
            self._sigma[act] = new_sig
        else:
            self._sigma[np.ix_(act, self._live_pos)] = new_sig
        self._rounds[act] += 1
        return changed

    def run(self, steps: int) -> None:
        """Run exactly ``steps`` steps (active replicas only)."""
        for _ in range(steps):
            self.step()

    def run_until_stable(self, max_steps: int = DEFAULT_MAX_STEPS) -> np.ndarray:
        """Step each replica to its own fixed point (deterministic automata).

        A replica is deactivated after its first no-change step, so
        converged replicas stop paying for later steps.  With a fault plan,
        no replica is deactivated while events are still pending (a future
        fault can destabilise a fixed point).  Returns the per-replica step
        counts (the no-change step included, matching
        :meth:`VectorizedSynchronousEngine.run_until_stable`).  Raises if
        any replica fails to converge within ``max_steps``.
        """
        for _ in range(max_steps):
            if not self._active.any():
                return self.rounds
            changed = self.step()
            if self.fault_plan is None or self.fault_plan.exhausted:
                self._active &= changed
        if self._active.any():
            raise RuntimeError(
                f"{int(self._active.sum())}/{self.replicas} replicas reached "
                f"no fixed point within {max_steps} steps"
            )
        return self.rounds

    def run_until(
        self, stop: StopPredicate, max_steps: int = DEFAULT_MAX_STEPS
    ) -> np.ndarray:
        """Step until ``stop(counts)`` holds per replica; returns rounds.

        ``stop`` receives a replica's ``{state: multiplicity}`` dict over
        the *live* nodes (the cheap observable — computing it is one
        bincount over the batch) and is checked *before* each step, so an
        initially satisfied replica executes zero steps.  Replicas whose
        predicate holds are deactivated; the remaining ones keep evolving.
        Raises if any replica is still unsatisfied after ``max_steps``.
        """
        for remaining in range(max_steps, -1, -1):
            for r in np.flatnonzero(self._active):
                if stop(self.replica_state_counts(int(r))):
                    self._active[r] = False
            if not self._active.any():
                return self.rounds
            if remaining:
                self.step()
        raise RuntimeError(
            f"{int(self._active.sum())}/{self.replicas} replicas did not "
            f"satisfy stop within {max_steps} steps"
        )

    # ------------------------------------------------------------------
    def replica_state(self, r: int) -> NetworkState:
        """Decode replica ``r``'s σ (live nodes only) to a :class:`NetworkState`."""
        row = self._sigma[r]
        if self._live_pos is None:
            return NetworkState(
                {v: self.alphabet[row[i]] for i, v in enumerate(self._order)}
            )
        return NetworkState(
            {v: self.alphabet[row[self._pos0[v]]] for v in self._net}
        )

    @property
    def states(self) -> list[NetworkState]:
        """All replicas' decoded states."""
        return [self.replica_state(r) for r in range(self.replicas)]

    def replica_state_counts(self, r: int) -> dict:
        """Multiplicity of each alphabet state over replica ``r``'s live nodes."""
        row = self._sigma[r]
        if self._live_pos is not None:
            row = row[self._live_pos]
        binc = np.bincount(row, minlength=len(self.alphabet))
        return {q: int(binc[i]) for i, q in enumerate(self.alphabet)}

    def state_counts(self) -> list[dict]:
        """Per-replica state multiplicities, via one batched bincount."""
        s = len(self.alphabet)
        sig = self._sigma
        if self._live_pos is not None:
            sig = sig[:, self._live_pos]
        flat = (sig + (np.arange(self.replicas) * s)[:, None]).ravel()
        binc = np.bincount(flat, minlength=self.replicas * s).reshape(
            self.replicas, s
        )
        return [
            {q: int(binc[r, i]) for i, q in enumerate(self.alphabet)}
            for r in range(self.replicas)
        ]


def run_replicas(
    net: Network,
    programs: Union[Mapping, FSSGA, ProbabilisticFSSGA, CompiledAutomaton],
    init: Union[NetworkState, Sequence[NetworkState]],
    replicas: Optional[int] = None,
    *,
    steps: Optional[int] = None,
    stop: Optional[StopPredicate] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    randomness: Optional[int] = None,
    rng: Union[int, np.random.Generator, Sequence[np.random.Generator], None] = None,
    fault_plan: Optional[ChurnPlan] = None,
    backend: Union[str, ArrayBackend, None] = "auto",
) -> BatchedRunResult:
    """Evolve R replicas to termination and collect per-replica results.

    Exactly one termination mode applies: ``steps`` runs a fixed horizon;
    ``stop`` runs each replica until its state-count predicate holds;
    neither runs each replica to a fixed point (deterministic automata
    only).  A ``fault_plan`` mutates ``net`` (pass a copy to keep the
    original).  Returns final states, per-replica executed rounds, a
    converged mask, and final state counts.
    """
    engine = BatchedSynchronousEngine(
        net, programs, init, replicas,
        randomness=randomness, rng=rng, fault_plan=fault_plan,
        backend=backend,
    )
    if steps is not None and stop is not None:
        raise ValueError("give either steps or stop, not both")
    if steps is not None:
        engine.run(steps)
        converged = np.ones(engine.replicas, dtype=bool)
    elif stop is not None:
        engine.run_until(stop, max_steps=max_steps)
        converged = ~engine.active
    else:
        engine.run_until_stable(max_steps=max_steps)
        converged = ~engine.active
    return BatchedRunResult(
        final_states=engine.states,
        rounds=engine.rounds,
        converged=converged,
        state_counts=engine.state_counts(),
    )
