"""Parallel SM programs (paper, Definitions 3.3 and 3.4).

A parallel program ``(W, α, p, β)`` lifts each input through ``α``, reduces
the resulting working states pairwise via ``p`` along an arbitrary rooted
binary tree, and maps the single survivor through ``β``.  Definition 3.4
requires the result to be independent of both the leaf permutation and the
tree shape; this holds whenever ``p`` is commutative and associative on the
closure of ``α(Q)`` — the cheap sufficient check implemented in
:meth:`ParallelProgram.check_assoc_comm`.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field
from typing import Callable, Union

from repro.core.multiset import Multiset, iter_multisets
from repro.core.trees import Tree, all_trees, balanced_tree, tree_combine

State = Hashable
Working = Hashable
Result = Hashable

__all__ = ["ParallelProgram"]


@dataclass(frozen=True)
class ParallelProgram:
    """The tuple ``(W, α, p, β)`` of Definition 3.4.

    Parameters
    ----------
    working_states:
        The finite set ``W``.
    lift:
        ``α : Q → W``, mapping each input to its own working state.
    combine:
        ``p : W × W → W``, the pairwise reduction.
    output:
        ``β : W → R``.
    name:
        Optional label for reprs and error messages.
    """

    working_states: frozenset
    lift: Callable[[State], Working]
    combine: Callable[[Working, Working], Working]
    output: Callable[[Working], Result]
    name: str = field(default="", compare=False)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        inputs: Union[Sequence[State], Multiset],
        tree: Union[Tree, None] = None,
    ) -> Result:
        """``f(q̄)`` evaluated along ``tree`` (balanced by default).

        For a *valid* parallel SM program the choice of tree is irrelevant;
        passing an explicit tree is useful for validity tests and for the
        Figure 1 demonstrations.
        """
        if isinstance(inputs, Multiset):
            seq: Sequence[State] = inputs.elements()
        else:
            seq = list(inputs)
        if not seq:
            raise ValueError("SM functions are defined on Q^+ (length >= 1)")
        leaves = [self.lift(q) for q in seq]
        for w in leaves:
            if w not in self.working_states:
                raise ValueError(f"alpha produced {w!r} outside W")
        if tree is None:
            tree = balanced_tree(len(seq))
        w = tree_combine(self.combine, tree, leaves)
        if w not in self.working_states:
            raise ValueError(f"combine produced {w!r} outside W")
        return self.output(w)

    def __call__(self, inputs: Union[Sequence[State], Multiset]) -> Result:
        return self.evaluate(inputs)

    # ------------------------------------------------------------------
    # validity checking
    # ------------------------------------------------------------------
    def reachable_states(self, alphabet: Sequence[State]) -> set:
        """Closure of ``α(alphabet)`` under ``p`` (all combinable values)."""
        seen = set()
        for q in alphabet:
            w = self.lift(q)
            if w not in self.working_states:
                raise ValueError(f"alpha({q!r}) = {w!r} is not in W")
            seen.add(w)
        frontier = list(seen)
        while frontier:
            w1 = frontier.pop()
            for w2 in list(seen):
                for a, b in ((w1, w2), (w2, w1)):
                    w3 = self.combine(a, b)
                    if w3 not in self.working_states:
                        raise ValueError(f"p({a!r}, {b!r}) = {w3!r} is not in W")
                    if w3 not in seen:
                        seen.add(w3)
                        frontier.append(w3)
        return seen

    def check_assoc_comm(self, alphabet: Sequence[State]) -> bool:
        """Sufficient condition for Definition 3.4 validity.

        If ``p`` is commutative and associative on the closure of ``α(Q)``,
        every tree shape and leaf order reduces to the same element, so the
        program is a valid parallel SM program.
        """
        reach = self.reachable_states(alphabet)
        for a, b in itertools.combinations_with_replacement(sorted(reach, key=repr), 2):
            if self.combine(a, b) != self.combine(b, a):
                return False
        for a, b, c in itertools.product(sorted(reach, key=repr), repeat=3):
            if self.combine(self.combine(a, b), c) != self.combine(
                a, self.combine(b, c)
            ):
                return False
        return True

    def is_sm(self, alphabet: Sequence[State], max_len: int = 4) -> bool:
        """Exhaustively verify tree- and permutation-invariance.

        Quantifies over every multiset of size <= ``max_len``, every distinct
        permutation of its elements, and every rooted binary tree shape.
        Cost grows with Catalan numbers times factorials; keep ``max_len``
        small (<= 5).
        """
        for ms in iter_multisets(list(alphabet), max_len):
            elements = ms.elements()
            k = len(elements)
            trees = list(all_trees(k))
            results = set()
            for perm in set(itertools.permutations(elements)):
                for tree in trees:
                    results.add(self.evaluate(list(perm), tree=tree))
                    if len(results) > 1:
                        return False
        return True

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def agrees_with(
        self,
        other: "Callable[[Multiset], Result]",
        alphabet: Sequence[State],
        max_len: int = 5,
    ) -> bool:
        """True iff this program and ``other`` agree on all multisets up to
        ``max_len``."""
        for ms in iter_multisets(list(alphabet), max_len):
            if self.evaluate(ms) != other(ms):
                return False
        return True
