"""The paper's core contribution (Section 3): symmetric multi-input
finite-state functions in three equivalent formulations, and the FSSGA
distributed-computing model built on them.

Public surface:

* :mod:`repro.core.multiset` — the ``Q^+`` input domain as multisets.
* :mod:`repro.core.trees` — rooted binary combination trees (Figure 1).
* :mod:`repro.core.sequential` — Definition 3.2 sequential programs.
* :mod:`repro.core.parallel` — Definitions 3.3/3.4 parallel programs.
* :mod:`repro.core.modthresh` — Definition 3.6 mod-thresh programs.
* :mod:`repro.core.convert` — Lemmas 3.5/3.8/3.9, Theorem 3.7.
* :mod:`repro.core.automaton` — Definitions 3.10/3.11 (FSSGA).
* :mod:`repro.core.compile` — rule → formal mod-thresh compilation.
* :mod:`repro.core.ir` — the shared engine IR (:class:`CompiledAutomaton`)
  and the :func:`lower` pass from every front-end form onto it.
* :mod:`repro.core.simplify` — cascade pruning and exact program
  equivalence over bounded verification domains.
* :mod:`repro.core.bounded_degree` — the Section 3.1 ε-padding automata
  and their FSSGA embedding.
* :mod:`repro.core.tape` — the Section 5 tape generalization.
"""

from repro.core.multiset import Multiset, iter_multisets, iter_sequences
from repro.core.trees import (
    Leaf,
    Branch,
    all_trees,
    balanced_tree,
    left_comb,
    right_comb,
    random_tree_shape,
    tree_combine,
    num_leaves,
    render_tree,
)
from repro.core.sequential import SequentialProgram
from repro.core.parallel import ParallelProgram
from repro.core.modthresh import (
    ModAtom,
    ThreshAtom,
    Proposition,
    TRUE,
    FALSE,
    ModThreshProgram,
    at_least,
    fewer_than,
    exactly,
    count_is_mod,
)
from repro.core.convert import (
    parallel_to_sequential,
    modthresh_to_parallel,
    sequential_to_modthresh,
    sequential_to_parallel,
    modthresh_to_sequential,
)
from repro.core.automaton import (
    NeighborhoodView,
    FSSGA,
    ProbabilisticFSSGA,
)
from repro.core.compile import compile_rule, CompilationError
from repro.core.ir import (
    CompiledAutomaton,
    LoweringError,
    lower,
    lowering_cache_info,
    clear_lowering_cache,
)
from repro.core.simplify import (
    programs_equivalent,
    propositions_equivalent,
    prune_cascade,
    verification_bound,
)

__all__ = [
    "Multiset",
    "iter_multisets",
    "iter_sequences",
    "Leaf",
    "Branch",
    "all_trees",
    "balanced_tree",
    "left_comb",
    "right_comb",
    "random_tree_shape",
    "tree_combine",
    "num_leaves",
    "render_tree",
    "SequentialProgram",
    "ParallelProgram",
    "ModAtom",
    "ThreshAtom",
    "Proposition",
    "TRUE",
    "FALSE",
    "ModThreshProgram",
    "at_least",
    "fewer_than",
    "exactly",
    "count_is_mod",
    "parallel_to_sequential",
    "modthresh_to_parallel",
    "sequential_to_modthresh",
    "sequential_to_parallel",
    "modthresh_to_sequential",
    "NeighborhoodView",
    "FSSGA",
    "ProbabilisticFSSGA",
    "compile_rule",
    "CompilationError",
    "CompiledAutomaton",
    "LoweringError",
    "lower",
    "lowering_cache_info",
    "clear_lowering_cache",
    "programs_equivalent",
    "propositions_equivalent",
    "prune_cascade",
    "verification_bound",
]
