"""The Section 5 tape generalization of SM programs.

Instead of a finite state set, each node carries a binary tape: inputs are
``q(N)``-bit strings and working states are ``w(N)``-bit strings, with
``(W_N, w0N, p_N, β_N)`` uniformly computable in ``N``.  The paper sketches
that the sequential→parallel construction extends, yielding a parallel
program with working states of ``w'(N) = O(2^{q(N)} · w(N))`` bits, and asks
whether ``w'(N) = O(w(N))`` is always achievable (open).

:class:`TapeProgramFamily` represents such a family;
:func:`tape_sequential_to_parallel` instantiates the construction at a given
``N`` — per input string, a mod counter and a saturating counter sized by
the orbit structure of ``g_q : w ↦ p(w, q)``, exactly as in Lemmas 3.8/3.9.
:func:`parallel_working_bits` reports the bit-size of the resulting working
state so the ``O(2^q · w)`` bound can be measured (benchmark E16).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.convert import orbit_tail_and_period
from repro.core.multiset import Multiset
from repro.core.parallel import ParallelProgram
from repro.core.sequential import SequentialProgram

__all__ = [
    "TapeProgramFamily",
    "instantiate",
    "tape_sequential_to_parallel",
    "parallel_working_bits",
    "all_bitstrings",
]


def all_bitstrings(bits: int) -> list[str]:
    """All ``2**bits`` binary strings of the given length."""
    return ["".join(b) for b in itertools.product("01", repeat=bits)]


@dataclass(frozen=True)
class TapeProgramFamily:
    """A uniformly-computable family of sequential tape programs.

    Parameters
    ----------
    input_bits:
        ``q : N → N``, the input-string length.
    working_bits:
        ``w : N → N``, the working-string length.
    start:
        ``N → {0,1}^{w(N)}``, the initial working string ``w0N``.
    process:
        ``(N, working, input) → working``; must preserve string length.
    output:
        ``(N, working) → result`` (any hashable result).
    name:
        Optional label.
    """

    input_bits: Callable[[int], int]
    working_bits: Callable[[int], int]
    start: Callable[[int], str]
    process: Callable[[int, str, str], str]
    output: Callable[[int, str], object]
    name: str = ""


def instantiate(family: TapeProgramFamily, n: int) -> SequentialProgram:
    """The member of the family at parameter ``N = n`` as a concrete
    :class:`~repro.core.sequential.SequentialProgram` over bit-string states."""
    wbits = family.working_bits(n)
    working = frozenset(all_bitstrings(wbits))
    w0 = family.start(n)
    if len(w0) != wbits:
        raise ValueError(f"start string has {len(w0)} bits, expected {wbits}")

    def p(w: str, q: str) -> str:
        return family.process(n, w, q)

    def beta(w: str):
        return family.output(n, w)

    return SequentialProgram(
        working_states=working,
        start=w0,
        process=p,
        output=beta,
        name=f"{family.name or 'tape'}[N={n}]",
    )


def tape_sequential_to_parallel(
    family: TapeProgramFamily,
    n: int,
    alphabet: Optional[Sequence[str]] = None,
) -> ParallelProgram:
    """The Section 5 uniform sequential→parallel construction at ``N = n``.

    The parallel working state is a tuple of ``(mod_count, sat_count)``
    pairs, one per input string ``q ∈ {0,1}^{q(N)}``, where the counters are
    sized by the tail ``t_q`` and period ``m_q`` of the orbit of ``w0`` under
    ``g_q``.  β reconstructs a representative multiset (``sat`` exact counts
    below ``t_q``; above, ``t_q`` plus the stored residue offset) and folds
    it through the original sequential program.
    """
    sp = instantiate(family, n)
    states = list(alphabet) if alphabet is not None else all_bitstrings(
        family.input_bits(n)
    )
    tails: dict[str, int] = {}
    periods: dict[str, int] = {}
    for q in states:
        tails[q], periods[q] = orbit_tail_and_period(
            lambda w, _q=q: sp.process(w, _q), sp.start
        )

    index = {q: i for i, q in enumerate(states)}
    # Counter ceilings: sat counts saturate at max(t_q, 1) — at least 1 so
    # "have we seen this input at all" survives even when the tail is empty —
    # and the residue mod m_q keeps the exact orbit point recoverable.
    sat_cap = {q: max(tails[q], 1) for q in states}
    mod_cap = {q: periods[q] for q in states}

    class _Space:
        def __contains__(self, w: object) -> bool:
            if not isinstance(w, tuple) or len(w) != len(states):
                return False
            for (a, b), q in zip(w, states):
                if not (0 <= a < mod_cap[q]):
                    return False
                if not (0 <= b <= sat_cap[q]):
                    return False
            return True

        def __len__(self) -> int:
            out = 1
            for q in states:
                out *= mod_cap[q] * (sat_cap[q] + 1)
            return out

    def lift(q: str):
        if q not in index:
            raise ValueError(f"input {q!r} not a {family.input_bits(n)}-bit string")
        return tuple(
            (1 % mod_cap[s], min(1, sat_cap[s])) if s == q else (0, 0)
            for s in states
        )

    def combine(w1, w2):
        out = []
        for (a1, b1), (a2, b2), q in zip(w1, w2, states):
            out.append(
                ((a1 + a2) % mod_cap[q], min(b1 + b2, sat_cap[q]))
            )
        return tuple(out)

    def output(w):
        reps: dict[str, int] = {}
        for (a, b), q in zip(w, states):
            t, m = tails[q], periods[q]
            if b == 0:
                continue  # this input never occurred
            if b < sat_cap[q]:
                count = b  # exact: saturation not yet reached
            else:
                # count >= sat_cap >= t: recover the orbit point mod m, and
                # keep it positive (a count of 0 is already excluded).
                count = t + ((a - t) % m)
                if count == 0:
                    count = m
            reps[q] = count
        if not reps:
            raise ValueError("SM functions are defined on Q^+ (length >= 1)")
        return sp.evaluate(Multiset(reps))

    return ParallelProgram(
        working_states=_Space(),
        lift=lift,
        combine=combine,
        output=output,
        name=f"par({sp.name})",
    )


def parallel_working_bits(family: TapeProgramFamily, n: int) -> int:
    """Bit-size of the constructed parallel working state at ``N = n``.

    Sums ``⌈log2 m_q⌉ + ⌈log2 (t_q + 1)⌉`` over all ``2^{q(N)}`` input
    strings — the quantity the paper bounds by ``O(2^{q(N)} · w(N))``.
    """
    sp = instantiate(family, n)
    total = 0
    for q in all_bitstrings(family.input_bits(n)):
        t, m = orbit_tail_and_period(lambda w, _q=q: sp.process(w, _q), sp.start)
        total += max(1, math.ceil(math.log2(m))) + max(1, math.ceil(math.log2(t + 1)))
    return total
