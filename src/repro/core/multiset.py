"""Multisets over a finite alphabet: the input domain ``Q^+``.

An SM function (paper, Definition 3.1) is symmetric, so its value depends on
the input sequence only through the multiplicity vector ``μ``.  We therefore
normalise all inputs to :class:`Multiset` — a frozen Counter-like mapping —
and provide enumerators over small sequences/multisets for exhaustive
SM-validity checking and for the Lemma 3.9 construction.
"""

from __future__ import annotations

import itertools
from collections import Counter
from collections.abc import Hashable, Iterable, Iterator, Mapping, Sequence
from typing import Union

State = Hashable

__all__ = ["Multiset", "as_multiset", "iter_multisets", "iter_sequences"]


class Multiset(Mapping):
    """An immutable multiset of states with positive multiplicities.

    Hashable, so usable as a memo key.  ``Multiset({'a': 2})`` has size 2.
    Zero-multiplicity entries are dropped on construction.
    """

    __slots__ = ("_counts", "_size", "_hash")

    def __init__(self, counts: Union[Mapping, Iterable, None] = None) -> None:
        if counts is None:
            c: Counter = Counter()
        elif isinstance(counts, Mapping):
            c = Counter({k: int(v) for k, v in counts.items() if v})
        else:
            c = Counter(counts)
        for k, v in c.items():
            if v < 0:
                raise ValueError(f"negative multiplicity for {k!r}")
        self._counts: dict = dict(c)
        self._size = sum(self._counts.values())
        self._hash = hash(frozenset(self._counts.items()))

    # -- mapping protocol -------------------------------------------------
    def __getitem__(self, q: State) -> int:
        return self._counts.get(q, 0)

    def __iter__(self) -> Iterator[State]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, q: State) -> bool:
        return self._counts.get(q, 0) > 0

    # -- multiset ops -----------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of elements counted with multiplicity (``|q̄|``)."""
        return self._size

    def multiplicity(self, q: State) -> int:
        """``μ_q(q̄)``, the paper's multiplicity function."""
        return self._counts.get(q, 0)

    def add(self, q: State, k: int = 1) -> "Multiset":
        """A new multiset with ``k`` extra copies of ``q``."""
        c = dict(self._counts)
        c[q] = c.get(q, 0) + k
        return Multiset(c)

    def union(self, other: "Multiset") -> "Multiset":
        """Multiset sum (concatenation of the underlying sequences)."""
        c = Counter(self._counts)
        c.update(other._counts)
        return Multiset(c)

    def elements(self) -> list[State]:
        """A canonical flat sequence realisation (sorted by repr)."""
        out: list[State] = []
        for q in sorted(self._counts, key=repr):
            out.extend([q] * self._counts[q])
        return out

    def support(self) -> set[State]:
        return set(self._counts)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Multiset):
            return self._counts == other._counts
        if isinstance(other, Mapping):
            return self._counts == {k: v for k, v in other.items() if v}
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{q!r}: {k}" for q, k in sorted(self._counts.items(), key=lambda t: repr(t[0])))
        return f"Multiset({{{inner}}})"


def as_multiset(arg: Union[Multiset, Mapping, Sequence, Counter]) -> Multiset:
    """Coerce a sequence, Counter or mapping into a :class:`Multiset`."""
    if isinstance(arg, Multiset):
        return arg
    if isinstance(arg, Mapping):
        return Multiset(arg)
    return Multiset(Counter(arg))


def iter_sequences(alphabet: Sequence[State], length: int) -> Iterator[tuple]:
    """All sequences of exactly ``length`` over ``alphabet``."""
    return itertools.product(alphabet, repeat=length)


def iter_multisets(
    alphabet: Sequence[State], max_size: int, min_size: int = 1
) -> Iterator[Multiset]:
    """All multisets over ``alphabet`` with size in ``[min_size, max_size]``.

    Enumerated smallest-first; useful for exhaustive SM checks, where testing
    every multiset up to some size is equivalent to testing every sequence up
    to the same length (by symmetry) at exponentially lower cost.
    """
    if min_size < 0:
        raise ValueError("min_size must be >= 0")
    for size in range(min_size, max_size + 1):
        for combo in itertools.combinations_with_replacement(alphabet, size):
            yield Multiset(Counter(combo))
