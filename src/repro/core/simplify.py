"""Minimization utilities for mod-thresh programs.

The Lemma 3.9 construction emits one clause per multiplicity-class
combination — ∏(t_j + m_j) of them — but many clauses share results and
many predicates are unreachable.  Over a *bounded verification domain*
(multiplicities up to each state's tail+period, which determine the
program's behaviour everywhere), programs can be compared exactly and
cascades pruned:

* :func:`propositions_equivalent` — exact equivalence of two propositions
  over the bounded domain;
* :func:`prune_cascade` — drop clauses that can never fire (shadowed by
  earlier clauses) and merge trailing clauses into the default;
* :func:`programs_equivalent` — exact equivalence of two programs.

The bound must dominate every threshold and the lcm of every modulus
appearing in the inputs (checked); then agreement on the finite domain
implies agreement on all of ``Q^+``, by the same periodicity argument as
Lemma 3.9.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence
from typing import Optional

from repro.core.modthresh import ModThreshProgram, Proposition, ModAtom, ThreshAtom
from repro.core.multiset import Multiset

__all__ = [
    "verification_bound",
    "propositions_equivalent",
    "programs_equivalent",
    "prune_cascade",
]


def _atom_bounds(props: list[Proposition]) -> tuple[int, int]:
    """(max threshold, lcm of moduli) over all atoms of the propositions."""
    t_max, m_lcm = 1, 1
    for prop in props:
        for atom in prop.atoms():
            if isinstance(atom, ThreshAtom):
                t_max = max(t_max, atom.threshold)
            elif isinstance(atom, ModAtom):
                m_lcm = math.lcm(m_lcm, atom.modulus)
    return t_max, m_lcm


def verification_bound(*programs: ModThreshProgram) -> int:
    """A per-state multiplicity bound B such that agreement on all
    multisets with every multiplicity <= B implies agreement everywhere.

    B = (max threshold) + (lcm of all moduli): beyond the thresholds the
    behaviour is periodic with the lcm period."""
    t_max, m_lcm = _atom_bounds(
        [p for prog in programs for p, _r in prog.clauses]
    )
    return t_max + m_lcm


def _domain(alphabet: Sequence, bound: int):
    for combo in itertools.product(range(bound + 1), repeat=len(alphabet)):
        if sum(combo) == 0:
            continue
        yield Multiset({q: c for q, c in zip(alphabet, combo) if c})


def propositions_equivalent(
    a: Proposition,
    b: Proposition,
    alphabet: Sequence,
    bound: Optional[int] = None,
) -> bool:
    """Exact equivalence of two propositions over ``Q^+``.

    ``bound`` defaults to the joint verification bound of both."""
    if bound is None:
        t_max, m_lcm = _atom_bounds([a, b])
        bound = t_max + m_lcm
    return all(a.evaluate(ms) == b.evaluate(ms) for ms in _domain(alphabet, bound))


def programs_equivalent(
    a: ModThreshProgram,
    b: ModThreshProgram,
    alphabet: Sequence,
    bound: Optional[int] = None,
) -> bool:
    """Exact program equivalence over ``Q^+``."""
    if bound is None:
        bound = max(verification_bound(a), verification_bound(b))
    return all(a.evaluate(ms) == b.evaluate(ms) for ms in _domain(alphabet, bound))


def prune_cascade(
    program: ModThreshProgram, alphabet: Sequence
) -> ModThreshProgram:
    """An equivalent cascade with unreachable and redundant clauses removed.

    Two passes over the bounded domain:

    1. drop clauses that never fire (their predicate is shadowed by the
       clauses above them);
    2. drop trailing clauses whose result equals the default, and clauses
       whose removal provably does not change the program.
    """
    bound = verification_bound(program)
    domain = list(_domain(alphabet, bound))

    # pass 1: find, for each input, the clause that fires.
    clauses = list(program.clauses)
    fired = [False] * len(clauses)
    for ms in domain:
        for idx, (prop, _r) in enumerate(clauses):
            if prop.evaluate(ms):
                fired[idx] = True
                break
    clauses = [cl for cl, hit in zip(clauses, fired) if hit]

    # pass 2: greedily try removing each clause (a removal is safe iff the
    # program still agrees on the whole bounded domain).
    def evaluate_with(cls, ms):
        for prop, result in cls:
            if prop.evaluate(ms):
                return result
        return program.default

    reference = [evaluate_with(clauses, ms) for ms in domain]
    idx = 0
    while idx < len(clauses):
        candidate = clauses[:idx] + clauses[idx + 1 :]
        if [evaluate_with(candidate, ms) for ms in domain] == reference:
            clauses = candidate
        else:
            idx += 1

    return ModThreshProgram(
        clauses=tuple(clauses),
        default=program.default,
        name=f"pruned({program.name})" if program.name else "pruned",
    )
