"""Compile a Pythonic FSSGA rule into formal mod-thresh programs.

Rules written against :class:`~repro.core.automaton.NeighborhoodView` are
finite-state by construction, but they are Python functions, not
Definition 3.6 objects.  :func:`compile_rule` recovers an explicit
:class:`~repro.core.modthresh.ModThreshProgram` for one own-state ``q`` by
enumerating the multiplicity equivalence classes induced by declared bounds
(a threshold bound ``T`` and a modulus ``M`` per alphabet state) and
evaluating the rule on one representative per class — the same enumeration
as the Lemma 3.9 construction.

The compilation is *checked*: the atoms each evaluation traces must respect
the declared bounds (every thresh atom ``t <= T``, every mod modulus
dividing ``M``); otherwise distinct inputs in one class could disagree and a
:class:`CompilationError` is raised.
"""

from __future__ import annotations

import itertools
from collections import Counter
from collections.abc import Hashable, Mapping, Sequence
from typing import Optional

from repro.core.automaton import NeighborhoodView, Rule
from repro.core.convert import _class_predicate, _class_representative
from repro.core.modthresh import And, ModThreshProgram, Proposition, TRUE

State = Hashable

__all__ = ["compile_rule", "CompilationError"]


class CompilationError(ValueError):
    """The rule queried an atom outside the declared bounds.

    Carries the violation structurally so callers (the
    :mod:`repro.core.ir` bounds-inference loop) can widen the bounds and
    retry instead of parsing the message: ``kind`` is ``"thresh"`` /
    ``"mod"`` (recoverable by raising the bound for ``state`` to
    ``needed``) or ``"support"`` / ``"group"`` / ``"unknown-state"``
    (not recoverable by bound widening).
    """

    def __init__(
        self,
        message: str,
        kind: str = "other",
        state: State = None,
        needed: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.state = state
        self.needed = needed


def compile_rule(
    rule: Rule,
    alphabet: Sequence[State],
    own_state: State,
    max_threshold: int = 2,
    modulus: int = 1,
    per_state_bounds: Optional[Mapping[State, tuple[int, int]]] = None,
) -> ModThreshProgram:
    """Compile ``rule`` restricted to ``own_state`` into a mod-thresh program.

    Parameters
    ----------
    rule:
        A deterministic FSSGA rule ``(own, view) → state``.
    alphabet:
        The full state alphabet Q.
    own_state:
        The own state whose FSM function ``f[own_state]`` is being compiled.
    max_threshold:
        Default threshold bound T: the rule may only ask ``fewer_than(q, t)``
        with ``t <= T``.
    modulus:
        Default modulus bound M: the rule may only ask ``count_mod(q, m)``
        with ``m`` dividing ``M``.
    per_state_bounds:
        Optional overrides ``q → (T_q, M_q)``.

    Returns
    -------
    ModThreshProgram
        A cascade with one clause per multiplicity-class combination (the
        last class becomes the default), agreeing with the rule on every
        neighbour multiset.
    """
    states = list(alphabet)
    bounds: dict[State, tuple[int, int]] = {}
    for q in states:
        if per_state_bounds and q in per_state_bounds:
            t, m = per_state_bounds[q]
        else:
            t, m = max_threshold, modulus
        if t < 1 or m < 1:
            raise ValueError("bounds must be positive")
        bounds[q] = (t, m)

    def classes_for(q: State) -> list[tuple]:
        t, m = bounds[q]
        return [("exact", i) for i in range(t)] + [
            ("residue", i, t, m) for i in range(m)
        ]

    clauses: list[tuple[Proposition, object]] = []
    for combo in itertools.product(*(classes_for(q) for q in states)):
        reps = {q: _class_representative(cls) for q, cls in zip(states, combo)}
        if sum(reps.values()) == 0:
            continue  # empty neighbourhood is outside Q^+
        view = NeighborhoodView(Counter({q: c for q, c in reps.items() if c}))
        result = rule(own_state, view)
        _check_trace(view.trace, bounds, own_state)
        parts = [_class_predicate(q, cls) for q, cls in zip(states, combo)]
        non_trivial = [p for p in parts if p is not TRUE]
        prop: Proposition
        if not non_trivial:
            prop = TRUE
        elif len(non_trivial) == 1:
            prop = non_trivial[0]
        else:
            prop = And(tuple(non_trivial))
        clauses.append((prop, result))

    *head, (_last_prop, last_result) = clauses
    return ModThreshProgram(
        clauses=tuple(head),
        default=last_result,
        name=f"compiled[{own_state!r}]",
    )


def _check_trace(
    trace: set[tuple], bounds: Mapping[State, tuple[int, int]], own: State
) -> None:
    for atom in trace:
        if atom == ("support",):
            raise CompilationError(
                f"rule for own={own!r} used NeighborhoodView.support(); "
                f"support-based rules are not compilable",
                kind="support",
            )
        kind, q, param = atom
        if kind == "group":
            raise CompilationError(
                f"rule for own={own!r} used a group_at_least query; "
                f"group thresholds are not compilable (expand them manually)",
                kind="group",
            )
        if q not in bounds:
            raise CompilationError(
                f"rule for own={own!r} queried unknown state {q!r}",
                kind="unknown-state",
                state=q,
            )
        t_bound, m_bound = bounds[q]
        if kind == "thresh" and param > t_bound:
            raise CompilationError(
                f"rule for own={own!r} used thresh atom t={param} on {q!r} "
                f"but the declared bound is {t_bound}; raise max_threshold",
                kind="thresh",
                state=q,
                needed=param,
            )
        if kind == "mod" and m_bound % param != 0:
            raise CompilationError(
                f"rule for own={own!r} used mod atom m={param} on {q!r} "
                f"but the declared modulus {m_bound} is not a multiple; "
                f"set modulus to a common multiple",
                kind="mod",
                state=q,
                needed=param,
            )
