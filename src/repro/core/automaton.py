"""Finite-state symmetric graph automata (paper, Definitions 3.10/3.11).

An FSSGA is a pair ``(Q, f)`` where ``f[q]`` is an FSM function for each own
state ``q``: when a node activates it reads its own state (asymmetrically)
and the *multiset* of its neighbours' states (symmetrically) and moves to
``f[own](neighbours)``.  The probabilistic variant (Def. 3.11) additionally
draws ``i`` uniformly from ``{0, …, r-1}`` and applies ``f[own, i]``.

Rules here are written against :class:`NeighborhoodView`, which exposes the
neighbour multiset *only* through thresh queries (``at_least``/``fewer_than``)
and mod queries (``count_mod``).  Any rule expressible through this API is
automatically

* symmetric — it never sees an ordering of the neighbours — and
* finite-state — every query it can make is a mod or thresh atom, so by
  Theorem 3.7 the induced function is an FSM function.

The view records every atom a rule touches (:attr:`NeighborhoodView.trace`),
which :mod:`repro.core.compile` uses to build formal
:class:`~repro.core.modthresh.ModThreshProgram` equivalents for small
alphabets.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable, Mapping
from typing import Callable, Optional, Union

from repro.core.multiset import Multiset

State = Hashable

__all__ = ["NeighborhoodView", "FSSGA", "ProbabilisticFSSGA", "Rule", "ProbabilisticRule"]

#: A deterministic FSSGA rule: (own state, neighbourhood view) → new state.
Rule = Callable[[State, "NeighborhoodView"], State]

#: A probabilistic rule: (own state, view, random draw i) → new state.
ProbabilisticRule = Callable[[State, "NeighborhoodView", int], State]


class NeighborhoodView:
    """Read-only, symmetry-enforcing view of a node's neighbour multiset.

    Only mod-atom and thresh-atom queries are exposed; every query is traced
    as ``("thresh", state, t)`` or ``("mod", state, m)`` so callers can audit
    the finite-state footprint of a rule.
    """

    __slots__ = ("_counts", "trace")

    def __init__(self, counts: Union[Counter, Mapping, Iterable]) -> None:
        if isinstance(counts, Counter):
            self._counts = counts
        elif isinstance(counts, Mapping):
            self._counts = Counter(dict(counts))
        else:
            self._counts = Counter(counts)
        #: atoms queried so far: set of ("thresh", q, t) / ("mod", q, m).
        self.trace: set[tuple] = set()

    # -- thresh atoms -----------------------------------------------------
    def fewer_than(self, state: State, t: int) -> bool:
        """The thresh atom ``μ_state < t`` (t >= 1)."""
        if t < 1:
            raise ValueError("thresh atoms require t >= 1")
        self.trace.add(("thresh", state, t))
        return self._counts.get(state, 0) < t

    def at_least(self, state: State, t: int) -> bool:
        """``μ_state >= t`` — negation of a thresh atom (TRUE for t <= 0)."""
        if t <= 0:
            return True
        return not self.fewer_than(state, t)

    def any(self, *states: State) -> bool:
        """True iff any neighbour is in one of ``states``."""
        return any(self.at_least(q, 1) for q in states)

    def none(self, *states: State) -> bool:
        """True iff no neighbour is in any of ``states``."""
        return not self.any(*states)

    def exactly(self, state: State, k: int) -> bool:
        """``μ_state == k`` via two thresh atoms."""
        if k < 0:
            return False
        if k == 0:
            return self.fewer_than(state, 1)
        return self.at_least(state, k) and self.fewer_than(state, k + 1)

    def all_neighbors_in(self, states: Iterable[State], alphabet: Iterable[State]) -> bool:
        """True iff every neighbour state lies in ``states``.

        Needs the full alphabet so the complement can be queried with thresh
        atoms (a node cannot count its neighbours, but it can check that no
        neighbour is in a forbidden state).
        """
        allowed = set(states)
        return self.none(*(q for q in alphabet if q not in allowed))

    def any_matching(self, predicate: Callable[[State], bool]) -> bool:
        """True iff some neighbour's state satisfies ``predicate``.

        Over a finite alphabet this is the finite disjunction
        ``∨_{q : predicate(q)} (μ_q >= 1)`` — mod-thresh expressible — but
        it is implemented by scanning the distinct present states (O(deg)
        instead of O(|Q|)) and is not traced, so rules using it cannot be
        compiled.  Intended for large composite alphabets (e.g. the leader
        election automaton).
        """
        return any(
            predicate(q) for q, c in self._counts.items() if c > 0
        )

    def count_matching_at_least(
        self, predicate: Callable[[State], bool], t: int
    ) -> bool:
        """``Σ_{q : predicate(q)} μ_q >= t`` — the predicate form of
        :meth:`group_at_least` (untraced, not compilable)."""
        if t <= 0:
            return True
        total = 0
        for q, c in self._counts.items():
            if c > 0 and predicate(q):
                total += c
                if total >= t:
                    return True
        return False

    def group_at_least(self, states: Iterable[State], t: int) -> bool:
        """``Σ_{q ∈ states} μ_q >= t`` for a finite state group.

        A threshold on a finite sum expands to a finite disjunction over
        compositions of per-state thresh atoms (e.g. ``μ_a + μ_b >= 2`` is
        ``μ_a >= 2 ∨ μ_b >= 2 ∨ (μ_a >= 1 ∧ μ_b >= 1)``), so this stays
        mod-thresh expressible.  Traced as ``("group", states, t)``; not
        supported by the clause compiler.
        """
        group = tuple(states)
        if t <= 0:
            return True
        self.trace.add(("group", frozenset(group), t))
        total = 0
        for q in group:
            total += self._counts.get(q, 0)
            if total >= t:
                return True
        return False

    def group_fewer_than(self, states: Iterable[State], t: int) -> bool:
        """``Σ_{q ∈ states} μ_q < t`` — negated :meth:`group_at_least`."""
        return not self.group_at_least(states, t)

    def support(self) -> frozenset:
        """The set of states with at least one neighbour in them.

        Equivalent to the finite atom family ``{μ_q >= 1 : q ∈ Q}`` — still
        mod-thresh expressible, but traced as a single ``("support",)``
        marker, so rules using it cannot be compiled by
        :mod:`repro.core.compile` (they would need one clause per subset).
        Intended for semi-lattice rules over large alphabets, e.g. the
        bitwise-OR diffusion of the Flajolet–Martin census.
        """
        self.trace.add(("support",))
        return frozenset(q for q, c in self._counts.items() if c > 0)

    # -- mod atoms ----------------------------------------------------------
    def count_mod(self, state: State, modulus: int) -> int:
        """``μ_state mod modulus`` — a family of ``modulus`` mod atoms."""
        if modulus < 1:
            raise ValueError("mod atoms require modulus >= 1")
        self.trace.add(("mod", state, modulus))
        return self._counts.get(state, 0) % modulus

    def parity(self, state: State) -> int:
        """``μ_state mod 2``."""
        return self.count_mod(state, 2)

    # -- internals ----------------------------------------------------------
    def _multiset(self) -> Multiset:
        """Escape hatch for engines and validators (not for rules)."""
        return Multiset(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NeighborhoodView({dict(self._counts)!r})"


def _make_view(neighbors: Union[Counter, Mapping, Iterable]) -> NeighborhoodView:
    return NeighborhoodView(neighbors)


class FSSGA:
    """A deterministic finite-state symmetric graph automaton ``(Q, f)``.

    Parameters
    ----------
    alphabet:
        The finite state set ``Q``.  Transitions must stay inside it.
    rule:
        Either a :data:`Rule` callable, or a mapping ``q → FSM function``
        (anything with ``.evaluate(multiset)`` such as a
        :class:`~repro.core.modthresh.ModThreshProgram`,
        :class:`~repro.core.sequential.SequentialProgram` or
        :class:`~repro.core.parallel.ParallelProgram`).
    name:
        Optional label.
    compile_hints:
        Opt-in declaration that a *rule-based* automaton is compilable by
        the Lemma 3.9 clause enumeration (:mod:`repro.core.compile`), so
        the lowering pipeline (:mod:`repro.core.ir`) may derive formal
        mod-thresh programs from the rule and run it on the vectorized
        engines.  ``True`` means "compile with inferred bounds"; a mapping
        may pin ``max_threshold`` / ``modulus`` / ``per_state_bounds`` /
        ``max_classes`` (the keyword arguments of
        :func:`repro.core.compile.compile_rule`).  Only declare this for
        rules that read the neighbourhood exclusively through the traced
        thresh/mod queries — the compilation is checked, and rules using
        untraced escape hatches (``support``, ``any_matching``,
        ``group_at_least``, direct ``_counts`` access) must leave it unset.
    """

    def __init__(
        self,
        alphabet: Iterable[State],
        rule: Union[Rule, Mapping[State, object]],
        name: str = "",
        compile_hints: Union[bool, Mapping, None] = None,
    ) -> None:
        # Accept either an iterable (materialized to a frozenset) or a
        # lazy set-like object with __contains__ — large composite
        # alphabets (e.g. leader election's product state) need the latter.
        if isinstance(alphabet, (set, frozenset)):
            self.alphabet: object = frozenset(alphabet)
            if not self.alphabet:
                raise ValueError("the state alphabet Q must be nonempty")
        elif hasattr(alphabet, "__contains__") and not isinstance(
            alphabet, (list, tuple, str)
        ):
            self.alphabet = alphabet
        else:
            self.alphabet = frozenset(alphabet)
            if not self.alphabet:
                raise ValueError("the state alphabet Q must be nonempty")
        self.name = name
        if isinstance(rule, Mapping):
            programs = dict(rule)
            missing = [q for q in programs if q not in self.alphabet]
            if missing:
                raise ValueError(
                    f"program keys outside Q: {sorted(map(repr, missing))[:5]}"
                )
            if isinstance(self.alphabet, frozenset):
                absent = self.alphabet - set(programs)
                if absent:
                    raise ValueError(
                        f"no FSM function for states {sorted(map(repr, absent))[:5]}"
                    )
            self._programs: Optional[dict] = programs
            self._rule: Optional[Rule] = None
        else:
            self._programs = None
            self._rule = rule
        self.compile_hints = dict(compile_hints) if isinstance(
            compile_hints, Mapping
        ) else ({} if compile_hints else None)

    @classmethod
    def from_programs(
        cls, programs: Mapping[State, object], name: str = ""
    ) -> "FSSGA":
        """Build from an explicit ``q → FSM program`` mapping (Def. 3.10)."""
        return cls(alphabet=frozenset(programs.keys()), rule=programs, name=name)

    def transition(
        self, own: State, neighbors: Union[Counter, Mapping, Iterable]
    ) -> State:
        """One activation: the successor state of a node.

        ``neighbors`` is the multiset of neighbour states (Counter, mapping,
        or iterable).  Nodes with no neighbours keep their state — the paper
        assumes connected networks with >= 2 nodes, but faults can isolate a
        node mid-run, and an SM function has no value on the empty input.
        """
        if own not in self.alphabet:
            raise ValueError(f"own state {own!r} not in Q")
        view = _make_view(neighbors)
        if not view._counts:
            return own
        if self._programs is not None:
            out = self._programs[own].evaluate(view._multiset())
        else:
            out = self._rule(own, view)
        if out not in self.alphabet:
            raise ValueError(f"transition produced {out!r} outside Q")
        return out

    @property
    def is_rule_based(self) -> bool:
        return self._rule is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "FSSGA"
        try:
            size = len(self.alphabet)  # type: ignore[arg-type]
        except TypeError:
            size = "?"
        return f"{label}(|Q|={size})"


class ProbabilisticFSSGA:
    """A probabilistic FSSGA ``(Q, r, f)`` (Definition 3.11).

    On each activation a node draws ``i`` uniformly from ``{0, …, r-1}`` and
    applies the FSM function ``f[own, i]``.
    """

    def __init__(
        self,
        alphabet: Iterable[State],
        randomness: int,
        rule: Union[ProbabilisticRule, Mapping[tuple, object]],
        name: str = "",
        compile_hints: Union[bool, Mapping, None] = None,
    ) -> None:
        if isinstance(alphabet, (set, frozenset)):
            self.alphabet: object = frozenset(alphabet)
            if not self.alphabet:
                raise ValueError("the state alphabet Q must be nonempty")
        elif hasattr(alphabet, "__contains__") and not isinstance(
            alphabet, (list, tuple, str)
        ):
            self.alphabet = alphabet
        else:
            self.alphabet = frozenset(alphabet)
            if not self.alphabet:
                raise ValueError("the state alphabet Q must be nonempty")
        if randomness < 1:
            raise ValueError("randomness r must be a positive integer")
        self.randomness = randomness
        self.name = name
        if isinstance(rule, Mapping):
            programs = dict(rule)
            if isinstance(self.alphabet, frozenset):
                missing = {
                    (q, i)
                    for q in self.alphabet
                    for i in range(randomness)
                    if (q, i) not in programs
                }
                if missing:
                    raise ValueError(
                        f"missing FSM functions for {len(missing)} (q, i) pairs"
                    )
            self._programs: Optional[dict] = programs
            self._rule: Optional[ProbabilisticRule] = None
        else:
            self._programs = None
            self._rule = rule
        self.compile_hints = dict(compile_hints) if isinstance(
            compile_hints, Mapping
        ) else ({} if compile_hints else None)

    def transition(
        self,
        own: State,
        neighbors: Union[Counter, Mapping, Iterable],
        draw: int,
    ) -> State:
        """One activation with the random draw ``i = draw``."""
        if own not in self.alphabet:
            raise ValueError(f"own state {own!r} not in Q")
        if not 0 <= draw < self.randomness:
            raise ValueError(f"draw {draw} outside [0, {self.randomness})")
        view = _make_view(neighbors)
        if not view._counts:
            return own
        if self._programs is not None:
            out = self._programs[(own, draw)].evaluate(view._multiset())
        else:
            out = self._rule(own, view, draw)
        if out not in self.alphabet:
            raise ValueError(f"transition produced {out!r} outside Q")
        return out

    @property
    def is_rule_based(self) -> bool:
        return self._rule is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "ProbabilisticFSSGA"
        return f"{label}(|Q|={len(self.alphabet)}, r={self.randomness})"
