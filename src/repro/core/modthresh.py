"""Mod-thresh SM programs (paper, Section 3.3, Definition 3.6).

A *mod atom* asserts ``μ_i(q̄) ≡ r (mod m)``; a *thresh atom* asserts
``μ_i(q̄) < t``.  Propositions are the closure of atoms under finite
conjunction, disjunction, and negation.  A mod-thresh program is an
``if/elif/.../else`` cascade of propositions returning results — the
paper's "programming language" formulation of FSM functions.

Propositions depend on the input only through multiplicities, so every
mod-thresh program is automatically symmetric.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Sequence
from dataclasses import dataclass
from typing import Union

from repro.core.multiset import Multiset, as_multiset

State = Hashable
Result = Hashable

__all__ = [
    "Proposition",
    "ModAtom",
    "ThreshAtom",
    "And",
    "Or",
    "Not",
    "TRUE",
    "FALSE",
    "ModThreshProgram",
    "at_least",
    "fewer_than",
    "exactly",
    "count_is_mod",
]


class Proposition:
    """Base class for mod-thresh propositions.

    Subclasses implement :meth:`evaluate` over a multiset and enumerate
    their :meth:`atoms`.  Propositions compose with ``&``, ``|`` and ``~``.
    """

    def evaluate(self, counts: Multiset) -> bool:
        raise NotImplementedError

    def atoms(self) -> Iterator["Proposition"]:
        raise NotImplementedError

    def __and__(self, other: "Proposition") -> "Proposition":
        return And((self, other))

    def __or__(self, other: "Proposition") -> "Proposition":
        return Or((self, other))

    def __invert__(self) -> "Proposition":
        return Not(self)

    def __call__(self, counts) -> bool:
        return self.evaluate(as_multiset(counts))


@dataclass(frozen=True)
class ModAtom(Proposition):
    """The mod atom ``μ_state(q̄) ≡ residue (mod modulus)``."""

    state: State
    residue: int
    modulus: int

    def __post_init__(self) -> None:
        if self.modulus < 1:
            raise ValueError("modulus must be >= 1")
        if not 0 <= self.residue < self.modulus:
            raise ValueError("residue must lie in [0, modulus)")

    def evaluate(self, counts: Multiset) -> bool:
        return counts.multiplicity(self.state) % self.modulus == self.residue

    def atoms(self) -> Iterator[Proposition]:
        yield self

    def __repr__(self) -> str:
        return f"(μ[{self.state!r}] ≡ {self.residue} mod {self.modulus})"


@dataclass(frozen=True)
class ThreshAtom(Proposition):
    """The thresh atom ``μ_state(q̄) < threshold`` (threshold >= 1)."""

    state: State
    threshold: int

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be a positive integer")

    def evaluate(self, counts: Multiset) -> bool:
        return counts.multiplicity(self.state) < self.threshold

    def atoms(self) -> Iterator[Proposition]:
        yield self

    def __repr__(self) -> str:
        return f"(μ[{self.state!r}] < {self.threshold})"


@dataclass(frozen=True)
class And(Proposition):
    """Finite conjunction."""

    children: tuple

    def evaluate(self, counts: Multiset) -> bool:
        return all(c.evaluate(counts) for c in self.children)

    def atoms(self) -> Iterator[Proposition]:
        for c in self.children:
            yield from c.atoms()

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(map(repr, self.children)) + ")"


@dataclass(frozen=True)
class Or(Proposition):
    """Finite disjunction."""

    children: tuple

    def evaluate(self, counts: Multiset) -> bool:
        return any(c.evaluate(counts) for c in self.children)

    def atoms(self) -> Iterator[Proposition]:
        for c in self.children:
            yield from c.atoms()

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(map(repr, self.children)) + ")"


@dataclass(frozen=True)
class Not(Proposition):
    """Negation."""

    child: Proposition

    def evaluate(self, counts: Multiset) -> bool:
        return not self.child.evaluate(counts)

    def atoms(self) -> Iterator[Proposition]:
        yield from self.child.atoms()

    def __repr__(self) -> str:
        return f"¬{self.child!r}"


class _Const(Proposition):
    def __init__(self, value: bool) -> None:
        self._value = value

    def evaluate(self, counts: Multiset) -> bool:
        return self._value

    def atoms(self) -> Iterator[Proposition]:
        return iter(())

    def __repr__(self) -> str:
        return "TRUE" if self._value else "FALSE"


TRUE = _Const(True)
FALSE = _Const(False)


# ----------------------------------------------------------------------
# sugar used heavily by the algorithm implementations
# ----------------------------------------------------------------------
def fewer_than(state: State, t: int) -> Proposition:
    """``μ_state < t`` — a raw thresh atom."""
    return ThreshAtom(state, t)


def at_least(state: State, t: int) -> Proposition:
    """``μ_state >= t``; for t=0 this is TRUE, else ``¬(μ_state < t)``."""
    if t <= 0:
        return TRUE
    return Not(ThreshAtom(state, t))


def exactly(state: State, k: int) -> Proposition:
    """``μ_state == k``, expressed with thresh atoms only."""
    if k < 0:
        return FALSE
    if k == 0:
        return ThreshAtom(state, 1)
    return And((Not(ThreshAtom(state, k)), ThreshAtom(state, k + 1)))


def count_is_mod(state: State, residue: int, modulus: int) -> Proposition:
    """``μ_state ≡ residue (mod modulus)`` — a raw mod atom."""
    return ModAtom(state, residue % modulus, modulus)


@dataclass(frozen=True)
class ModThreshProgram:
    """The cascade ``(P_1, …, P_{c-1}; r_1, …, r_c)`` of Definition 3.6.

    ``clauses`` is a sequence of ``(proposition, result)`` pairs tried in
    order; ``default`` is the final ``else`` result ``r_c``.
    """

    clauses: tuple
    default: Result
    name: str = ""

    def __post_init__(self) -> None:
        for i, clause in enumerate(self.clauses):
            if len(clause) != 2 or not isinstance(clause[0], Proposition):
                raise TypeError(f"clause {i} must be a (Proposition, result) pair")

    # ------------------------------------------------------------------
    def evaluate(self, inputs: Union[Sequence[State], Multiset]) -> Result:
        """Run the cascade on the multiset of ``inputs``."""
        ms = as_multiset(inputs)
        if ms.size == 0:
            raise ValueError("SM functions are defined on Q^+ (length >= 1)")
        for prop, result in self.clauses:
            if prop.evaluate(ms):
                return result
        return self.default

    def __call__(self, inputs: Union[Sequence[State], Multiset]) -> Result:
        return self.evaluate(inputs)

    # ------------------------------------------------------------------
    def atoms(self) -> list[Proposition]:
        """All atoms occurring in any clause (with duplicates removed)."""
        seen: list[Proposition] = []
        seen_set: set = set()
        for prop, _result in self.clauses:
            for atom in prop.atoms():
                if atom not in seen_set:
                    seen_set.add(atom)
                    seen.append(atom)
        return seen

    def moduli(self, state: State) -> list[int]:
        """All moduli of mod atoms over ``state`` (for Lemma 3.8's M_i)."""
        return [a.modulus for a in self.atoms() if isinstance(a, ModAtom) and a.state == state]

    def thresholds(self, state: State) -> list[int]:
        """All thresholds of thresh atoms over ``state`` (Lemma 3.8's T_i)."""
        return [
            a.threshold
            for a in self.atoms()
            if isinstance(a, ThreshAtom) and a.state == state
        ]

    def results(self) -> set:
        """The result set R actually used by this program."""
        out = {r for _p, r in self.clauses}
        out.add(self.default)
        return out

    def agrees_with(
        self,
        other,
        alphabet: Sequence[State],
        max_len: int = 5,
    ) -> bool:
        """True iff this program and ``other`` agree on all multisets up to
        ``max_len``."""
        from repro.core.multiset import iter_multisets

        for ms in iter_multisets(list(alphabet), max_len):
            if self.evaluate(ms) != other(ms):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "ModThreshProgram"
        return f"{label}({len(self.clauses)} clauses, default={self.default!r})"
