"""The shared engine IR: every front-end form lowered to one compiled object.

Theorem 3.7 proves the sequential, parallel and mod-thresh formulations are
one function class, and Lemma 3.9 (via :mod:`repro.core.compile`) recovers a
mod-thresh cascade from a traced rule.  This module turns those equivalence
proofs into a compiler: :func:`lower` accepts any automaton the package can
express —

* a ``{q: program}`` / ``{(q, i): program}`` mapping whose values are
  :class:`~repro.core.modthresh.ModThreshProgram`,
  :class:`~repro.core.sequential.SequentialProgram` (Lemma 3.9) or
  :class:`~repro.core.parallel.ParallelProgram` (Lemma 3.5 ∘ 3.9);
* an :class:`~repro.core.automaton.FSSGA` /
  :class:`~repro.core.automaton.ProbabilisticFSSGA` built from such
  programs;
* a *rule-based* automaton that declares ``compile_hints``, compiled per
  own state by the checked Lemma 3.9 enumeration with automatic bound
  inference (the structured :class:`~repro.core.compile.CompilationError`
  tells the loop exactly which bound to widen);

— and emits a :class:`CompiledAutomaton`: an integer-coded state alphabet,
a table of unique mod/thresh feature atoms (shared across all cascades, so
engines evaluate each feature once per step), and a transition table mapping
``(own-state code, draw)`` to a compiled clause cascade.  All three engines
execute this IR; :meth:`CompiledAutomaton.as_automaton` re-expresses it as a
reference-interpreter automaton so the reference engine runs the very same
programs.

Automata that cannot be lowered raise :class:`LoweringError` (a
``TypeError`` subclass, matching the engines' historic rejection type) with
the genuinely blocking capability in the message — ``api.py`` surfaces that
reason instead of guessing.

Lowering is cached: automaton objects are memoized weakly by identity,
hashable program mappings by value, so a fault sweep constructing hundreds
of engines for one automaton compiles it once
(:func:`lowering_cache_info` / :func:`clear_lowering_cache`).
"""

from __future__ import annotations

import hashlib
import math
import weakref
from collections.abc import Hashable, Mapping
from typing import Optional, Union

from repro.core.automaton import FSSGA, ProbabilisticFSSGA
from repro.core.compile import CompilationError, compile_rule
from repro.core.convert import parallel_to_sequential, sequential_to_modthresh
from repro.core.modthresh import (
    And,
    ModAtom,
    ModThreshProgram,
    Not,
    Or,
    Proposition,
    ThreshAtom,
    _Const,
)
from repro.core.parallel import ParallelProgram
from repro.core.sequential import SequentialProgram
from repro.core.simplify import prune_cascade

State = Hashable

__all__ = [
    "CompiledAutomaton",
    "CompiledProgram",
    "LoweringError",
    "QuotientLoweringError",
    "BackendLoweringError",
    "lower",
    "lowering_cache_info",
    "clear_lowering_cache",
]

#: Ceiling on the Lemma 3.9 class enumeration ∏(t_q + m_q) per own state.
DEFAULT_MAX_CLASSES = 4096

#: Skip cascade pruning when its O(clauses² · domain) work exceeds this.
_PRUNE_WORK_LIMIT = 50_000

#: Bound-inference retry budget (each retry widens exactly one bound).
_MAX_WIDENINGS = 64


class LoweringError(TypeError):
    """The automaton cannot be lowered to the engine IR.

    Subclasses ``TypeError`` because the vectorized engines historically
    raised ``TypeError`` for rule-based automata; the message names the
    actual blocking capability (no compile hints, untraced queries,
    non-enumerable alphabet, class-table blowup, …).
    """


class QuotientLoweringError(LoweringError):
    """The run cannot take the symmetry-quotient execution path.

    Raised when a quotient lowering is requested (``engine="quotient"``)
    but a precondition fails; ``blocker`` is a stable machine-readable tag
    (``"no-group"``, ``"stale-group"``, ``"init-not-orbit-constant"``,
    ``"fault-plan"``, ``"replicas"``, …) naming the *actual* obstruction,
    and the message spells it out.  ``engine="auto"`` catches these and
    falls back to a full-graph engine instead of surfacing them.
    """

    def __init__(self, message: str, *, blocker: str) -> None:
        super().__init__(message)
        self.blocker = blocker


class BackendLoweringError(LoweringError):
    """The run cannot execute on the requested array backend.

    Raised when a backend is pinned (``backend="numba"`` & co.) but a
    precondition fails; ``blocker`` is a stable machine-readable tag
    (``"numba-unavailable"``, ``"reference-engine"``, …) naming the
    *actual* obstruction, matching the quotient-engine convention.
    ``backend="auto"`` never raises this — it only selects backends whose
    preconditions hold.
    """

    def __init__(self, message: str, *, blocker: str) -> None:
        super().__init__(message)
        self.blocker = blocker


class CompiledProgram:
    """One own-state's cascade in IR form.

    ``clauses`` is a tuple of ``(ctree, result_code)`` pairs; ``default``
    is the else-branch result code.  A *ctree* is a nested tuple whose
    leaves reference indices into the automaton's shared atom table:
    ``("atom", i)``, ``("not", c)``, ``("and", (c, …))``, ``("or", (c, …))``
    or ``("const", bool)`` — first-match semantics identical to the source
    :class:`~repro.core.modthresh.ModThreshProgram` (kept in ``source``).
    """

    __slots__ = ("clauses", "default", "source")

    def __init__(self, clauses: tuple, default: int, source: ModThreshProgram):
        self.clauses = clauses
        self.default = default
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompiledProgram({len(self.clauses)} clauses, default={self.default})"


def _hold(q: State) -> ModThreshProgram:
    """The no-op program padding result-only own states."""
    return ModThreshProgram(clauses=(), default=q)


class CompiledAutomaton:
    """The shared engine IR (see module docstring).

    Attributes
    ----------
    alphabet:
        The integer-coded state alphabet as a tuple (sorted by repr —
        the node order contract shared by every engine).
    code:
        ``state → int`` over ``alphabet``.
    probabilistic / randomness:
        Definition 3.11 parameters (``randomness == 1`` when deterministic).
    atoms:
        Tuple of unique :class:`ThreshAtom` / :class:`ModAtom` features
        referenced by the cascades — the per-state mod/thresh feature
        table.  Engines evaluate each atom once per step and share the
        result across every cascade that mentions it.
    table:
        ``(own-state code, draw) → CompiledProgram``; ``draw`` is always 0
        for deterministic automata.
    """

    def __init__(
        self,
        alphabet: tuple,
        probabilistic: bool,
        randomness: int,
        atoms: tuple,
        table: dict,
        source_programs: dict,
        name: str = "",
    ) -> None:
        self.alphabet = alphabet
        self.code = {q: i for i, q in enumerate(alphabet)}
        self.probabilistic = probabilistic
        self.randomness = randomness
        self.atoms = atoms
        self.table = table
        self.source_programs = source_programs
        self.name = name
        self._content_hash: Optional[str] = None

    # ------------------------------------------------------------------
    def content_hash(self) -> str:
        """Stable hex digest of the IR content — the automaton identity a
        :class:`~repro.runtime.telemetry.RunManifest` records.

        Covers the coded alphabet, the randomness parameters, the unique
        atom table and every cascade (clauses + defaults); the cosmetic
        ``name`` is excluded.  Computed once and cached on the instance,
        so manifest capture after the first run is a dict lookup.
        """
        if self._content_hash is None:
            h = hashlib.sha256()
            h.update(repr(self.alphabet).encode())
            h.update(
                f"|prob={self.probabilistic}|r={self.randomness}".encode()
            )
            h.update(repr(self.atoms).encode())
            for key in sorted(self.table):
                prog = self.table[key]
                h.update(
                    f"|{key}:{prog.clauses!r}>{prog.default}".encode()
                )
            self._content_hash = h.hexdigest()
        return self._content_hash

    def program_for(self, q: State, draw: int = 0) -> Optional[CompiledProgram]:
        """The compiled cascade for ``(q, draw)``, or None (hold state)."""
        return self.table.get((self.code[q], draw))

    def as_automaton(self) -> Union[FSSGA, ProbabilisticFSSGA]:
        """Re-express the IR as a reference-interpreter automaton.

        Result-only states (no cascade of their own) get hold programs, so
        the reference engine and the vectorized engines execute identical
        semantics — this is what makes the three engines one IR runtime.
        """
        if self.probabilistic:
            full = {
                (q, i): self.source_programs.get((q, i), _hold(q))
                for q in self.alphabet
                for i in range(self.randomness)
            }
            return ProbabilisticFSSGA(
                frozenset(self.alphabet), self.randomness, full, name=self.name
            )
        full = {
            q: self.source_programs.get(q, _hold(q)) for q in self.alphabet
        }
        return FSSGA(frozenset(self.alphabet), full, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = f"r={self.randomness}" if self.probabilistic else "det"
        return (
            f"CompiledAutomaton(|Q|={len(self.alphabet)}, {kind}, "
            f"{len(self.atoms)} atoms, {len(self.table)} cascades)"
        )


# ----------------------------------------------------------------------
# proposition → ctree interning (atom-table common-subexpression sharing)
# ----------------------------------------------------------------------
def _intern(prop: Proposition, atoms: list, index: dict) -> tuple:
    if isinstance(prop, (ThreshAtom, ModAtom)):
        i = index.get(prop)
        if i is None:
            i = len(atoms)
            atoms.append(prop)
            index[prop] = i
        return ("atom", i)
    if isinstance(prop, Not):
        return ("not", _intern(prop.child, atoms, index))
    if isinstance(prop, And):
        return ("and", tuple(_intern(c, atoms, index) for c in prop.children))
    if isinstance(prop, Or):
        return ("or", tuple(_intern(c, atoms, index) for c in prop.children))
    if isinstance(prop, _Const):
        return ("const", prop.evaluate(None))
    raise LoweringError(f"unexpected proposition {prop!r}")


# ----------------------------------------------------------------------
# front-end form → ModThreshProgram dict
# ----------------------------------------------------------------------
def _to_modthresh(prog: object, conversion_alphabet: list) -> ModThreshProgram:
    """Lower one FSM program to mod-thresh form (Theorem 3.7)."""
    if isinstance(prog, ModThreshProgram):
        return prog
    if isinstance(prog, SequentialProgram):
        return sequential_to_modthresh(prog, conversion_alphabet)
    if isinstance(prog, ParallelProgram):
        return sequential_to_modthresh(
            parallel_to_sequential(prog), conversion_alphabet
        )
    raise LoweringError(
        f"cannot lower program of type {type(prog).__name__}: expected "
        f"ModThreshProgram, SequentialProgram or ParallelProgram"
    )


def _lower_program_dict(
    programs: Mapping,
    probabilistic: bool,
    randomness: int,
    conversion_alphabet: list,
    name: str,
) -> CompiledAutomaton:
    """Assemble the IR from a mapping of (already typed) FSM programs."""
    mt: dict = {}
    for key, prog in programs.items():
        mt[key] = _to_modthresh(prog, conversion_alphabet)

    own_states = {k[0] for k in mt} if probabilistic else set(mt)
    alphabet_set = set(own_states)
    for prog in mt.values():
        alphabet_set.update(prog.results())
    alphabet = tuple(sorted(alphabet_set, key=repr))
    code = {q: i for i, q in enumerate(alphabet)}

    atoms: list = []
    index: dict = {}
    table: dict = {}
    for key, prog in mt.items():
        q, draw = key if probabilistic else (key, 0)
        clauses = tuple(
            (_intern(p, atoms, index), code[r]) for p, r in prog.clauses
        )
        table[(code[q], draw)] = CompiledProgram(
            clauses, code[prog.default], prog
        )
    return CompiledAutomaton(
        alphabet=alphabet,
        probabilistic=probabilistic,
        randomness=randomness,
        atoms=tuple(atoms),
        table=table,
        source_programs=mt,
        name=name,
    )


# ----------------------------------------------------------------------
# rule-based lowering: checked Lemma 3.9 compilation with bound inference
# ----------------------------------------------------------------------
def _infer_and_compile(
    rule, states: list, own: State, hints: Mapping
) -> ModThreshProgram:
    """Compile ``rule`` for ``own``, widening declared bounds on demand.

    Starts from the hinted (or minimal) per-state bounds and retries on
    structured :class:`CompilationError`: a thresh violation raises that
    state's threshold bound to the queried ``t``, a mod violation lifts the
    modulus to the lcm.  Unrecoverable violations (support / group /
    unknown-state queries) and class-table blowups become
    :class:`LoweringError`.
    """
    t0 = int(hints.get("max_threshold", 1))
    m0 = int(hints.get("modulus", 1))
    psb = hints.get("per_state_bounds") or {}
    cap = int(hints.get("max_classes", DEFAULT_MAX_CLASSES))
    bounds = {s: tuple(psb.get(s, (t0, m0))) for s in states}
    for _ in range(_MAX_WIDENINGS):
        n_classes = 1
        for t, m in bounds.values():
            n_classes *= t + m
        if n_classes > cap:
            raise LoweringError(
                f"Lemma 3.9 enumeration for own={own!r} needs {n_classes} "
                f"multiplicity classes (> max_classes={cap}); the alphabet "
                f"or query bounds are too large to compile"
            )
        try:
            return compile_rule(rule, states, own, per_state_bounds=bounds)
        except CompilationError as exc:
            if exc.kind == "thresh" and exc.needed is not None:
                t, m = bounds[exc.state]
                if exc.needed <= t:
                    raise LoweringError(str(exc)) from exc
                bounds[exc.state] = (exc.needed, m)
            elif exc.kind == "mod" and exc.needed is not None:
                t, m = bounds[exc.state]
                widened = math.lcm(m, exc.needed)
                if widened == m:
                    raise LoweringError(str(exc)) from exc
                bounds[exc.state] = (t, widened)
            else:
                raise LoweringError(
                    f"rule-based automaton is not compilable: {exc}"
                ) from exc
    raise LoweringError(
        f"bound inference for own={own!r} did not converge within "
        f"{_MAX_WIDENINGS} widenings"
    )


def _maybe_prune(prog: ModThreshProgram, states: list) -> ModThreshProgram:
    """Prune the compiled cascade when doing so is cheap.

    The Lemma 3.9 enumeration emits ∏(t+m) clauses, most of them shadowed
    or default-equivalent; pruning is exact over the bounded verification
    domain (`repro.core.simplify`), so semantics — and cross-engine
    conformance — are unchanged.  Its greedy pass is O(clauses² · domain),
    so big cascades are left as-emitted rather than spending seconds at
    compile time to shave per-step np.select calls."""
    from repro.core.simplify import verification_bound

    try:
        bound = verification_bound(prog)
    except ValueError:  # pragma: no cover - defensive
        return prog
    work = len(prog.clauses) ** 2 * (bound + 1) ** len(states)
    if work > _PRUNE_WORK_LIMIT:
        return prog
    return prune_cascade(prog, states)


def _lower_rule_based(
    aut: Union[FSSGA, ProbabilisticFSSGA]
) -> CompiledAutomaton:
    hints = aut.compile_hints
    if hints is None:
        raise LoweringError(
            "rule-based automaton has no compile_hints: only rules declared "
            "compilable (FSSGA(..., compile_hints=...)) are lowered via the "
            "Lemma 3.9 enumeration; undeclared rules run on the reference "
            "interpreter"
        )
    if not isinstance(aut.alphabet, frozenset):
        raise LoweringError(
            "rule-based automaton has a lazy (non-enumerable) alphabet; "
            "the Lemma 3.9 enumeration needs a finite explicit Q"
        )
    states = sorted(aut.alphabet, key=repr)
    probabilistic = isinstance(aut, ProbabilisticFSSGA)
    randomness = aut.randomness if probabilistic else 1

    compiled: dict = {}
    if probabilistic:
        for i in range(randomness):
            det_rule = lambda own, view, _i=i: aut._rule(own, view, _i)
            for q in states:
                prog = _infer_and_compile(det_rule, states, q, hints)
                compiled[(q, i)] = _maybe_prune(prog, states)
    else:
        for q in states:
            prog = _infer_and_compile(aut._rule, states, q, hints)
            compiled[q] = _maybe_prune(prog, states)

    ca = _lower_program_dict(
        compiled, probabilistic, randomness, states, aut.name
    )
    # rule outputs are validated against Q at transition time; the compiled
    # table inherits that, but the coded alphabet must still span all of Q
    # (a rule may never *output* some state that nodes can start in).
    if set(ca.alphabet) != set(states):
        return _widen_alphabet(ca, states)
    return ca


def _widen_alphabet(ca: CompiledAutomaton, states: list) -> CompiledAutomaton:
    """Re-code a compiled automaton over the full alphabet ``states``."""
    alphabet = tuple(sorted(set(states) | set(ca.alphabet), key=repr))
    code = {q: i for i, q in enumerate(alphabet)}
    old_decode = {i: q for q, i in ca.code.items()}
    table = {}
    for (qc, draw), prog in ca.table.items():
        clauses = tuple(
            (tree, code[old_decode[r]]) for tree, r in prog.clauses
        )
        table[(code[old_decode[qc]], draw)] = CompiledProgram(
            clauses, code[old_decode[prog.default]], prog.source
        )
    return CompiledAutomaton(
        alphabet=alphabet,
        probabilistic=ca.probabilistic,
        randomness=ca.randomness,
        atoms=ca.atoms,
        table=table,
        source_programs=ca.source_programs,
        name=ca.name,
    )


# ----------------------------------------------------------------------
# the compile-once cache
# ----------------------------------------------------------------------
_AUTOMATON_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_MAPPING_CACHE: dict = {}
_MAPPING_CACHE_LIMIT = 256
_STATS = {"hits": 0, "misses": 0}


def lowering_cache_info() -> dict:
    """Hit/miss counters and current cache sizes (for tests/benchmarks)."""
    return {
        "hits": _STATS["hits"],
        "misses": _STATS["misses"],
        "automata": len(_AUTOMATON_CACHE),
        "mappings": len(_MAPPING_CACHE),
    }


def clear_lowering_cache() -> None:
    """Drop every cached lowering and reset the counters."""
    _AUTOMATON_CACHE.clear()
    _MAPPING_CACHE.clear()
    _STATS["hits"] = 0
    _STATS["misses"] = 0


# ----------------------------------------------------------------------
# the front door of the compiler
# ----------------------------------------------------------------------
def lower(
    automaton: Union[Mapping, FSSGA, ProbabilisticFSSGA, CompiledAutomaton],
    randomness: Optional[int] = None,
) -> CompiledAutomaton:
    """Lower any supported automaton form to the shared engine IR.

    Raises :class:`LoweringError` (a ``TypeError``) when no lowering
    exists, with the blocking capability in the message.
    """
    if isinstance(automaton, CompiledAutomaton):
        return automaton

    if isinstance(automaton, (FSSGA, ProbabilisticFSSGA)):
        cached = _AUTOMATON_CACHE.get(automaton)
        if cached is not None:
            _STATS["hits"] += 1
            return cached
        _STATS["misses"] += 1
        if automaton.is_rule_based:
            ca = _lower_rule_based(automaton)
        else:
            probabilistic = isinstance(automaton, ProbabilisticFSSGA)
            r = automaton.randomness if probabilistic else 1
            if isinstance(automaton.alphabet, frozenset):
                conv = sorted(automaton.alphabet, key=repr)
            else:
                keys = automaton._programs.keys()
                own = {k[0] for k in keys} if probabilistic else set(keys)
                conv = sorted(own, key=repr)
            ca = _lower_program_dict(
                automaton._programs, probabilistic, r, conv, automaton.name
            )
        _AUTOMATON_CACHE[automaton] = ca
        return ca

    if isinstance(automaton, Mapping):
        if not automaton:
            raise LoweringError("cannot lower an empty program mapping")
        try:
            cache_key = (frozenset(automaton.items()), randomness)
        except TypeError:
            cache_key = None
        if cache_key is not None:
            cached = _MAPPING_CACHE.get(cache_key)
            if cached is not None:
                _STATS["hits"] += 1
                return cached
        _STATS["misses"] += 1

        keys = list(automaton.keys())
        probabilistic = isinstance(keys[0], tuple) and randomness is not None
        if probabilistic:
            if randomness < 1:
                raise ValueError("probabilistic programs need randomness >= 1")
            r = int(randomness)
            own = {k[0] for k in keys}
        else:
            r = 1
            own = set(keys)
        conv = sorted(own, key=repr)
        ca = _lower_program_dict(dict(automaton), probabilistic, r, conv, "")
        if cache_key is not None:
            if len(_MAPPING_CACHE) >= _MAPPING_CACHE_LIMIT:
                _MAPPING_CACHE.pop(next(iter(_MAPPING_CACHE)))
            _MAPPING_CACHE[cache_key] = ca
        return ca

    raise LoweringError(
        f"cannot lower {type(automaton).__name__}: expected a program "
        f"mapping, FSSGA, ProbabilisticFSSGA or CompiledAutomaton"
    )
