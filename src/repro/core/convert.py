"""Constructive conversions between SM program formulations.

This module implements the three containments of Theorem 3.7:

* :func:`parallel_to_sequential` — Lemma 3.5: conquer one input at a time.
* :func:`modthresh_to_parallel` — Lemma 3.8: evaluate the multiplicity
  counters mod ``M_i`` and saturating at ``T_i`` in divide-and-conquer
  fashion.
* :func:`sequential_to_modthresh` — Lemma 3.9: the value of a sequential SM
  function depends on each multiplicity only through the eventually-periodic
  orbit of ``g_j : w ↦ p(w, j)``, which mod-thresh propositions can
  distinguish.

Composition closes the cycle (:func:`sequential_to_parallel`,
:func:`modthresh_to_sequential`), demonstrating that the three classes are
one and the same — the *FSM functions*.  As the paper notes, the
constructions "can entail an exponential increase in program complexity";
benchmarks/bench_equivalence.py measures this blowup.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Hashable, Sequence
from typing import Union

from repro.core.modthresh import (
    And,
    ModAtom,
    ModThreshProgram,
    Not,
    Proposition,
    ThreshAtom,
    TRUE,
)
from repro.core.multiset import Multiset
from repro.core.parallel import ParallelProgram
from repro.core.sequential import SequentialProgram

State = Hashable

__all__ = [
    "parallel_to_sequential",
    "modthresh_to_parallel",
    "sequential_to_modthresh",
    "sequential_to_parallel",
    "modthresh_to_sequential",
    "orbit_tail_and_period",
    "INFINITY",
]

#: Sentinel for the saturated ("∞") value of a threshold counter (Lemma 3.8).
INFINITY = "∞"

#: Sentinel for the Lemma 3.5 construction's empty working state.
_NIL = ("NIL",)


class _CounterSpace:
    """The Lemma 3.8 working-state space, membership-checked lazily.

    An element is a tuple of ``(a_i, b_i)`` pairs, one per alphabet state,
    with ``a_i ∈ [0, M_i)`` and ``b_i ∈ [0, T_i) ∪ {INFINITY}``.  Supports
    ``in``, ``len`` and iteration without materializing the product.
    """

    def __init__(self, moduli: Sequence[int], thresholds: Sequence[int]) -> None:
        self._moduli = list(moduli)
        self._thresholds = list(thresholds)

    def __contains__(self, w: object) -> bool:
        if not isinstance(w, tuple) or len(w) != len(self._moduli):
            return False
        for (a, b), m, t in zip(w, self._moduli, self._thresholds):
            if not (isinstance(a, int) and 0 <= a < m):
                return False
            if b != INFINITY and not (isinstance(b, int) and 0 <= b < t):
                return False
        return True

    def __len__(self) -> int:
        out = 1
        for m, t in zip(self._moduli, self._thresholds):
            out *= m * (t + 1)
        return out

    def __iter__(self):
        ranges = [
            [(a, b) for a in range(m) for b in list(range(t)) + [INFINITY]]
            for m, t in zip(self._moduli, self._thresholds)
        ]
        return itertools.product(*ranges)

    def __or__(self, other):
        # Needed by parallel_to_sequential, which adds the NIL state.
        return _AugmentedSpace(self, frozenset(other))


class _AugmentedSpace:
    """A lazily-checked state space plus finitely many extra elements."""

    def __init__(self, base, extra: frozenset) -> None:
        self._base = base
        self._extra = extra

    def __contains__(self, w: object) -> bool:
        return w in self._extra or w in self._base

    def __len__(self) -> int:
        return len(self._base) + len(self._extra)

    def __iter__(self):
        yield from self._extra
        yield from self._base

    def __or__(self, other):
        return _AugmentedSpace(self._base, self._extra | frozenset(other))


def parallel_to_sequential(pp: ParallelProgram) -> SequentialProgram:
    """Lemma 3.5: fold inputs one at a time through the parallel combiner.

    The sequential program starts at a fresh ``NIL`` state; the first input
    is lifted with ``α``, and each later input ``q`` is folded as
    ``p(α(q), w)``.
    """

    if isinstance(pp.working_states, (set, frozenset)):
        working = frozenset(pp.working_states) | {_NIL}
    else:
        working = pp.working_states | {_NIL}

    def process(w, q):
        if w == _NIL:
            return pp.lift(q)
        return pp.combine(pp.lift(q), w)

    def output(w):
        if w == _NIL:
            raise ValueError("SM functions are defined on Q^+ (length >= 1)")
        return pp.output(w)

    return SequentialProgram(
        working_states=working,
        start=_NIL,
        process=process,
        output=output,
        name=f"seq({pp.name})" if pp.name else "seq(parallel)",
    )


def modthresh_to_parallel(
    mt: ModThreshProgram, alphabet: Sequence[State]
) -> ParallelProgram:
    """Lemma 3.8: count multiplicities with finite counters, in parallel.

    For each state ``i`` in the alphabet, the working state carries a pair
    ``(a_i, b_i)``: ``a_i`` counts mod ``M_i`` (the lcm of all moduli of mod
    atoms over ``i``) and ``b_i`` counts up to ``T_i`` (the max threshold of
    thresh atoms over ``i``) then saturates at :data:`INFINITY`.  Pairwise
    combination adds componentwise; β replays the cascade using the counter
    values in place of true multiplicities.
    """
    states = list(alphabet)
    index = {q: k for k, q in enumerate(states)}

    big_m = {
        q: math.lcm(1, *mt.moduli(q)) for q in states
    }
    big_t = {
        q: max([1, *mt.thresholds(q)]) for q in states
    }

    # Working states: one (mod, sat) pair per alphabet state, as a tuple.
    # The product space has ∏_i M_i·(T_i+1) elements — exponential in |Q|
    # (the paper's noted blowup) — so we expose it lazily rather than
    # materializing a frozenset.
    working = _CounterSpace(
        [big_m[q] for q in states], [big_t[q] for q in states]
    )

    def lift(q):
        if q not in index:
            raise ValueError(f"input state {q!r} not in the declared alphabet")
        out = []
        for s in states:
            if s == q:
                a = 1 % big_m[s]
                b: Union[int, str] = 1 if 1 < big_t[s] else INFINITY
            else:
                a, b = 0, 0
            out.append((a, b))
        return tuple(out)

    def combine(w1, w2):
        out = []
        for (a1, b1), (a2, b2), q in zip(w1, w2, states):
            a = (a1 + a2) % big_m[q]
            if b1 == INFINITY or b2 == INFINITY or b1 + b2 >= big_t[q]:
                b: Union[int, str] = INFINITY
            else:
                b = b1 + b2
            out.append((a, b))
        return tuple(out)

    def _atom_value(atom: Proposition, w) -> bool:
        if isinstance(atom, ModAtom):
            a, _b = w[index[atom.state]]
            # a holds the true multiplicity mod M_state; atom.modulus | M.
            return a % atom.modulus == atom.residue
        if isinstance(atom, ThreshAtom):
            _a, b = w[index[atom.state]]
            if b == INFINITY:
                return False  # multiplicity >= T >= threshold
            return b < atom.threshold
        raise TypeError(f"unexpected atom {atom!r}")

    def _prop_value(prop: Proposition, w) -> bool:
        if isinstance(prop, (ModAtom, ThreshAtom)):
            return _atom_value(prop, w)
        if isinstance(prop, And):
            return all(_prop_value(c, w) for c in prop.children)
        from repro.core.modthresh import Or, _Const

        if isinstance(prop, Or):
            return any(_prop_value(c, w) for c in prop.children)
        if isinstance(prop, Not):
            return not _prop_value(prop.child, w)
        if isinstance(prop, _Const):
            return prop.evaluate(Multiset({states[0]: 1}))
        raise TypeError(f"unexpected proposition {prop!r}")

    def output(w):
        for prop, result in mt.clauses:
            if _prop_value(prop, w):
                return result
        return mt.default

    return ParallelProgram(
        working_states=working,
        lift=lift,
        combine=combine,
        output=output,
        name=f"par({mt.name})" if mt.name else "par(modthresh)",
    )


def orbit_tail_and_period(step, start, limit: int = 1_000_000) -> tuple[int, int]:
    """Tail length t and period m of the eventually-periodic orbit of
    ``start`` under ``step`` (over a finite set).

    Returns the least ``(t, m)`` such that for all z1, z2 >= t with
    z1 ≡ z2 (mod m), ``step^(z1)(start) == step^(z2)(start)``.
    """
    seen: dict = {start: 0}
    w = start
    for i in range(1, limit + 1):
        w = step(w)
        if w in seen:
            tail = seen[w]
            period = i - tail
            return tail, period
        seen[w] = i
    raise RuntimeError("orbit did not close within the iteration limit")


def _class_predicate(state: State, cls: tuple) -> Proposition:
    """A mod-thresh proposition asserting μ_state lies in the given class.

    ``cls`` is either ``("exact", i)`` — the singleton {i} — or
    ``("residue", i, t, m)`` — the class {n >= t : n ≡ i (mod m)}.
    These are Equations (4) and (5) of the paper, with care at the
    boundaries where a ``μ < 0`` atom would be ill-formed.
    """
    if cls[0] == "exact":
        i = cls[1]
        if i == 0:
            return ThreshAtom(state, 1)
        return And((ThreshAtom(state, i + 1), Not(ThreshAtom(state, i))))
    _kind, i, t, m = cls
    conj: list[Proposition] = []
    if t > 0:
        conj.append(Not(ThreshAtom(state, t)))
    if m > 1:
        conj.append(ModAtom(state, i % m, m))
    if not conj:
        return TRUE
    if len(conj) == 1:
        return conj[0]
    return And(tuple(conj))


def _class_representative(cls: tuple) -> int:
    """The least multiplicity in the class."""
    if cls[0] == "exact":
        return cls[1]
    _kind, i, t, m = cls
    rep = t + ((i - t) % m)
    return rep


def sequential_to_modthresh(
    sp: SequentialProgram, alphabet: Sequence[State]
) -> ModThreshProgram:
    """Lemma 3.9: compile a sequential SM program to a mod-thresh cascade.

    For each input state ``j`` compute the tail ``t_j`` and period ``m_j``
    of the orbit of ``w0`` under ``g_j : w ↦ p(w, j)``.  The function value
    depends on ``μ_j`` only through its ``~_j`` equivalence class; we
    enumerate one clause per combination of classes (``∏_j (t_j + m_j)``
    clauses — the paper's exponential blowup) and evaluate the sequential
    program on a representative multiset to find each clause's result.

    The input ``sp`` must be a *valid* sequential SM program over
    ``alphabet``; validity is not re-checked here.
    """
    states = list(alphabet)
    tails: dict[State, int] = {}
    periods: dict[State, int] = {}
    for j in states:
        tails[j], periods[j] = orbit_tail_and_period(
            lambda w, _j=j: sp.process(w, _j), sp.start
        )

    def classes_for(j: State) -> list[tuple]:
        t, m = tails[j], periods[j]
        exact = [("exact", i) for i in range(t)]
        residue = [("residue", i, t, m) for i in range(m)]
        return exact + residue

    clauses: list[tuple[Proposition, object]] = []
    for combo in itertools.product(*(classes_for(j) for j in states)):
        reps = {j: _class_representative(cls) for j, cls in zip(states, combo)}
        if sum(reps.values()) == 0:
            # The all-zero representative vector is outside Q^+.  If every
            # class is the exact singleton {0} the combo only contains the
            # empty input and is unreachable; otherwise some class is a
            # residue class containing positive counts — bump that state's
            # representative by one period to get a valid witness.
            bumpable = [
                (j, cls) for j, cls in zip(states, combo) if cls[0] == "residue"
            ]
            if not bumpable:
                continue
            j0, cls0 = bumpable[0]
            reps[j0] = _class_representative(cls0) + cls0[3]
        predicate_parts = [
            _class_predicate(j, cls) for j, cls in zip(states, combo)
        ]
        non_trivial = [p for p in predicate_parts if p is not TRUE]
        if not non_trivial:
            prop: Proposition = TRUE
        elif len(non_trivial) == 1:
            prop = non_trivial[0]
        else:
            prop = And(tuple(non_trivial))
        result = sp.evaluate(Multiset(reps))
        clauses.append((prop, result))

    if not clauses:
        raise ValueError("empty alphabet produces no mod-thresh clauses")
    *head, (last_prop, last_result) = clauses
    # The final clause becomes the 'else' branch: on valid inputs exactly one
    # clause predicate holds, so dropping the last predicate is sound.
    return ModThreshProgram(
        clauses=tuple(head),
        default=last_result,
        name=f"mt({sp.name})" if sp.name else "mt(sequential)",
    )


def sequential_to_parallel(
    sp: SequentialProgram, alphabet: Sequence[State]
) -> ParallelProgram:
    """The composite Lemma 3.9 ∘ Lemma 3.8 conversion."""
    return modthresh_to_parallel(sequential_to_modthresh(sp, alphabet), alphabet)


def modthresh_to_sequential(
    mt: ModThreshProgram, alphabet: Sequence[State]
) -> SequentialProgram:
    """The composite Lemma 3.8 ∘ Lemma 3.5 conversion."""
    return parallel_to_sequential(modthresh_to_parallel(mt, alphabet))
