"""The bounded-degree ε-automaton of Section 3.1.

Before introducing unbounded-degree SM functions, the paper recalls the
conventional fix for irregular graphs of degree at most Δ: pad the
neighbour tuple with a special null symbol ε, giving a transition
function ``f : Q × (Q ∪ {ε})^Δ → Q`` (Equation 1 generalized; the cited
[17]/[12]/[21] models).  This module implements that automaton and the
embedding into the FSSGA model, making the paper's "we did not want to
restrict our attention to bounded-degree graphs" comparison executable:

* a :class:`BoundedDegreeAutomaton` runs on any network with
  ``max_degree <= Δ``;
* :func:`as_fssga` converts one whose transition is symmetric in its
  neighbour slots into an equivalent FSSGA — symmetric bounded-degree
  automata are the special case of FSSGA where every thresh atom has
  ``t <= Δ`` (neighbour counts are exact below the degree bound);
* conversely FSSGA rules using thresholds above Δ have no bounded-degree
  counterpart on larger-degree graphs, which is the expressiveness gap
  the paper's model closes.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Callable

from repro.core.automaton import FSSGA, NeighborhoodView
from repro.network.graph import Network

State = Hashable

#: the distinguished null padding symbol.
EPSILON = ("ε",)

__all__ = ["EPSILON", "BoundedDegreeAutomaton", "as_fssga"]


class BoundedDegreeAutomaton:
    """``f : Q × (Q ∪ {ε})^Δ → Q`` with ε-padding (Section 3.1).

    Parameters
    ----------
    alphabet:
        The state set Q (must not contain :data:`EPSILON`).
    max_degree:
        The degree bound Δ.
    transition:
        ``f(own, padded)`` where ``padded`` is a Δ-tuple over Q ∪ {ε}.
        For :func:`as_fssga` to apply, ``f`` must be symmetric in the
        tuple entries; :meth:`is_symmetric` spot-checks this.
    """

    def __init__(
        self,
        alphabet: Iterable[State],
        max_degree: int,
        transition: Callable[[State, tuple], State],
    ) -> None:
        self.alphabet = frozenset(alphabet)
        if EPSILON in self.alphabet:
            raise ValueError("the alphabet must not contain the ε symbol")
        if max_degree < 1:
            raise ValueError("the degree bound must be >= 1")
        self.max_degree = max_degree
        self.transition_fn = transition

    def pad(self, neighbors: Iterable[State]) -> tuple:
        """Pad a neighbour list to a Δ-tuple with ε."""
        ns = list(neighbors)
        if len(ns) > self.max_degree:
            raise ValueError(
                f"degree {len(ns)} exceeds the bound Δ = {self.max_degree}"
            )
        return tuple(ns) + (EPSILON,) * (self.max_degree - len(ns))

    def transition(self, own: State, neighbors: Iterable[State]) -> State:
        if own not in self.alphabet:
            raise ValueError(f"own state {own!r} not in Q")
        out = self.transition_fn(own, self.pad(neighbors))
        if out not in self.alphabet:
            raise ValueError(f"transition produced {out!r} outside Q")
        return out

    def is_symmetric(self, samples: int = 200, rng_seed: int = 0) -> bool:
        """Spot-check slot symmetry on random padded tuples."""
        import numpy as np

        rng = np.random.default_rng(rng_seed)
        states = sorted(self.alphabet, key=repr)
        pool = states + [EPSILON]
        for _ in range(samples):
            own = states[int(rng.integers(len(states)))]
            tup = [pool[int(rng.integers(len(pool)))] for _ in range(self.max_degree)]
            perm = list(tup)
            rng.shuffle(perm)
            if self.transition_fn(own, tuple(tup)) != self.transition_fn(
                own, tuple(perm)
            ):
                return False
        return True

    def check_network(self, net: Network) -> None:
        """Raise if the network violates the degree bound."""
        if net.max_degree() > self.max_degree:
            raise ValueError(
                f"network max degree {net.max_degree()} exceeds Δ = {self.max_degree}"
            )


def as_fssga(automaton: BoundedDegreeAutomaton, name: str = "") -> FSSGA:
    """Embed a *symmetric* bounded-degree automaton into the FSSGA model.

    The FSSGA rule reconstructs a padded tuple from the neighbour
    multiset (any slot order — symmetry makes them all equal) and applies
    the original transition.  All information used is the multiset with
    counts ≤ Δ, i.e. thresh atoms with thresholds ≤ Δ: the paper's point
    that bounded-degree models are a strict special case.
    """
    bd = automaton

    def rule(own: State, view: NeighborhoodView) -> State:
        # reconstruct exact counts: bounded by Δ, so finitely many thresh
        # atoms determine each multiplicity exactly.
        neighbors: list[State] = []
        for q in sorted(bd.alphabet, key=repr):
            count = 0
            for t in range(1, bd.max_degree + 1):
                if view.at_least(q, t):
                    count = t
                else:
                    break
            neighbors.extend([q] * count)
        return bd.transition(own, neighbors)

    return FSSGA(bd.alphabet, rule, name=name or "bounded-degree")
