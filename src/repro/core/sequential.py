"""Sequential SM programs (paper, Definition 3.2).

A sequential program ``(W, w0, p, β)`` folds its inputs one at a time
through the processing function ``p`` and maps the final working state back
through ``β``.  It defines an SM function exactly when the folded result is
independent of the input order; :meth:`SequentialProgram.is_sm` checks this
exhaustively up to a length bound, and
:meth:`SequentialProgram.check_commutative` verifies the stronger (but
cheaply checkable) sufficient condition that ``p`` commutes on every
reachable working state.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field
from typing import Callable, Union

from repro.core.multiset import Multiset, iter_multisets

State = Hashable
Working = Hashable
Result = Hashable

__all__ = ["SequentialProgram"]


@dataclass(frozen=True)
class SequentialProgram:
    """The tuple ``(W, w0, p, β)`` of Definition 3.2.

    Parameters
    ----------
    working_states:
        The finite set ``W``.  ``p`` must stay inside it (checked lazily on
        every evaluation).
    start:
        The distinguished starting state ``w0 ∈ W``.
    process:
        ``p : W × Q → W``.
    output:
        ``β : W → R``.
    name:
        Optional label used in reprs and error messages.
    """

    working_states: frozenset
    start: Working
    process: Callable[[Working, State], Working]
    output: Callable[[Working], Result]
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.start not in self.working_states:
            raise ValueError(f"start state {self.start!r} not in W")

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def fold(self, inputs: Sequence[State]) -> Working:
        """Run ``p`` over ``inputs`` in the given order; return final w."""
        w = self.start
        for q in inputs:
            w = self.process(w, q)
            if w not in self.working_states:
                raise ValueError(
                    f"process left W: p({w!r} <- ..., {q!r}) not in working_states"
                )
        return w

    def evaluate(self, inputs: Union[Sequence[State], Multiset]) -> Result:
        """``f(q̄)`` = ``β`` of the fold.  Accepts a sequence or multiset.

        Multisets are flattened in canonical order — legitimate only because
        a *valid* sequential SM program is order-independent.
        """
        if isinstance(inputs, Multiset):
            seq: Sequence[State] = inputs.elements()
        else:
            seq = list(inputs)
        if not seq:
            raise ValueError("SM functions are defined on Q^+ (length >= 1)")
        return self.output(self.fold(seq))

    def __call__(self, inputs: Union[Sequence[State], Multiset]) -> Result:
        return self.evaluate(inputs)

    # ------------------------------------------------------------------
    # validity checking
    # ------------------------------------------------------------------
    def reachable_states(self, alphabet: Sequence[State]) -> set:
        """All working states reachable from ``w0`` under any input word."""
        seen = {self.start}
        frontier = [self.start]
        while frontier:
            w = frontier.pop()
            for q in alphabet:
                w2 = self.process(w, q)
                if w2 not in self.working_states:
                    raise ValueError(f"p({w!r}, {q!r}) = {w2!r} is not in W")
                if w2 not in seen:
                    seen.add(w2)
                    frontier.append(w2)
        return seen

    def check_commutative(self, alphabet: Sequence[State]) -> bool:
        """Sufficient condition for SM-validity.

        If for every reachable ``w`` and all inputs ``a, b`` we have
        ``p(p(w,a),b) == p(p(w,b),a)``, then adjacent transpositions never
        change the fold, hence no permutation does, and the program is a
        valid sequential SM program.  (Not necessary: programs may differ in
        W yet agree after β.)
        """
        for w in self.reachable_states(alphabet):
            for a, b in itertools.combinations_with_replacement(alphabet, 2):
                if self.process(self.process(w, a), b) != self.process(
                    self.process(w, b), a
                ):
                    return False
        return True

    def is_sm(self, alphabet: Sequence[State], max_len: int = 5) -> bool:
        """Exhaustively verify order-independence for all |q̄| <= max_len.

        For each multiset up to the size bound, evaluates every distinct
        permutation and checks that β of the fold is constant.  Exponential
        in ``max_len`` — intended for unit tests on small programs.
        """
        for ms in iter_multisets(list(alphabet), max_len):
            results = {
                self.output(self.fold(perm))
                for perm in set(itertools.permutations(ms.elements()))
            }
            if len(results) != 1:
                return False
        return True

    def counterexample(
        self, alphabet: Sequence[State], max_len: int = 5
    ) -> Union[tuple, None]:
        """A pair of permutations of the same multiset with different values,
        or ``None`` if none exists up to the bound."""
        for ms in iter_multisets(list(alphabet), max_len):
            perms = list(set(itertools.permutations(ms.elements())))
            base = self.output(self.fold(perms[0]))
            for perm in perms[1:]:
                if self.output(self.fold(perm)) != base:
                    return (perms[0], perm)
        return None

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def agrees_with(
        self,
        other: "Callable[[Multiset], Result]",
        alphabet: Sequence[State],
        max_len: int = 5,
    ) -> bool:
        """True iff this program and ``other`` agree on all multisets up to
        ``max_len``.  ``other`` may be any callable taking a Multiset."""
        for ms in iter_multisets(list(alphabet), max_len):
            if self.evaluate(ms) != other(ms):
                return False
        return True

    @staticmethod
    def from_tables(
        transitions: dict,
        start: Working,
        outputs: dict,
        name: str = "",
    ) -> "SequentialProgram":
        """Build a program from explicit lookup tables.

        ``transitions`` maps ``(w, q) -> w'``; ``outputs`` maps ``w -> r``.
        W is inferred from the tables.
        """
        working = set(outputs)
        working.add(start)
        for (w, _q), w2 in transitions.items():
            working.add(w)
            working.add(w2)

        def p(w: Working, q: State) -> Working:
            try:
                return transitions[(w, q)]
            except KeyError:
                raise ValueError(f"no transition for ({w!r}, {q!r})") from None

        def beta(w: Working) -> Result:
            try:
                return outputs[w]
            except KeyError:
                raise ValueError(f"no output defined for {w!r}") from None

        return SequentialProgram(frozenset(working), start, p, beta, name=name)
