"""Rooted binary combination trees (paper, Definition 3.3 and Figure 1).

A parallel SM program reduces its inputs pairwise; the order of reduction is
described by a rooted binary tree whose k leaves, read left-to-right, are
the k inputs.  Definition 3.4 requires the result to be independent of both
the tree shape and the leaf permutation; the enumerators here let tests and
validity checkers quantify over all shapes.

Trees are immutable: :class:`Leaf` holds a leaf index, :class:`Branch` holds
two subtrees.  The number of shapes with k leaves is the Catalan number
C(k-1), so exhaustive enumeration is only for small k.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterator, Sequence, TypeVar, Union

import numpy as np

W = TypeVar("W")

__all__ = [
    "Leaf",
    "Branch",
    "Tree",
    "num_leaves",
    "left_comb",
    "right_comb",
    "balanced_tree",
    "all_trees",
    "random_tree_shape",
    "tree_combine",
    "render_tree",
]


@dataclass(frozen=True)
class Leaf:
    """A leaf holding the 0-based index of the input it consumes."""

    index: int


@dataclass(frozen=True)
class Branch:
    """An internal node combining the results of two subtrees."""

    left: "Tree"
    right: "Tree"


Tree = Union[Leaf, Branch]


def num_leaves(tree: Tree) -> int:
    """Number of leaves of ``tree`` (iterative; trees can be deep combs)."""
    count = 0
    stack = [tree]
    while stack:
        t = stack.pop()
        if isinstance(t, Leaf):
            count += 1
        else:
            stack.append(t.left)
            stack.append(t.right)
    return count


def left_comb(k: int) -> Tree:
    """The left-leaning comb: ((((0,1),2),3)...)  — sequential order."""
    if k < 1:
        raise ValueError("a tree needs at least one leaf")
    t: Tree = Leaf(0)
    for i in range(1, k):
        t = Branch(t, Leaf(i))
    return t


def right_comb(k: int) -> Tree:
    """The right-leaning comb: (0,(1,(2,...)))."""
    if k < 1:
        raise ValueError("a tree needs at least one leaf")
    t: Tree = Leaf(k - 1)
    for i in range(k - 2, -1, -1):
        t = Branch(Leaf(i), t)
    return t


def balanced_tree(k: int) -> Tree:
    """A balanced tree of depth ⌈log2 k⌉ — the parallel-evaluation order."""
    if k < 1:
        raise ValueError("a tree needs at least one leaf")

    def build(lo: int, hi: int) -> Tree:
        if hi - lo == 1:
            return Leaf(lo)
        mid = (lo + hi) // 2
        return Branch(build(lo, mid), build(mid, hi))

    return build(0, k)


def all_trees(k: int) -> Iterator[Tree]:
    """Every rooted binary tree shape with k leaves labelled 0..k-1 in order.

    Yields Catalan(k-1) trees.  Only practical for k <= ~10.
    """
    if k < 1:
        raise ValueError("a tree needs at least one leaf")

    @lru_cache(maxsize=None)
    def shapes(lo: int, hi: int) -> tuple:
        if hi - lo == 1:
            return (Leaf(lo),)
        out = []
        for mid in range(lo + 1, hi):
            for lt in shapes(lo, mid):
                for rt in shapes(mid, hi):
                    out.append(Branch(lt, rt))
        return tuple(out)

    yield from shapes(0, k)
    shapes.cache_clear()


def random_tree_shape(k: int, rng: Union[int, np.random.Generator, None] = None) -> Tree:
    """A random tree shape with k leaves (uniform split recursion).

    Not uniform over shapes, but exercises a wide variety of reduction
    orders; sufficient for property tests of tree-invariance.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if k < 1:
        raise ValueError("a tree needs at least one leaf")

    def build(lo: int, hi: int) -> Tree:
        if hi - lo == 1:
            return Leaf(lo)
        mid = int(gen.integers(lo + 1, hi))
        return Branch(build(lo, mid), build(mid, hi))

    return build(0, k)


def tree_combine(p: Callable[[W, W], W], tree: Tree, leaf_values: Sequence[W]) -> W:
    """The tree-combination ``TC^(p,T)`` of Definition 3.3.

    Evaluates the tree bottom-up with an explicit stack (post-order), so deep
    combs (k in the thousands) do not overflow Python's recursion limit.
    """
    # post-order evaluation: (node, visited) stack
    stack: list[tuple[Tree, bool]] = [(tree, False)]
    values: list[W] = []
    while stack:
        node, visited = stack.pop()
        if isinstance(node, Leaf):
            values.append(leaf_values[node.index])
        elif visited:
            right = values.pop()
            left = values.pop()
            values.append(p(left, right))
        else:
            stack.append((node, True))
            stack.append((node.right, False))
            stack.append((node.left, False))
    assert len(values) == 1
    return values[0]


def render_tree(tree: Tree, labels: Sequence | None = None) -> str:
    """ASCII rendering of a combination tree (the paper's Figure 1).

    Each internal node is drawn as ``(left right)``; leaves show their input
    label (or index if no labels are given).
    """

    def rec(t: Tree) -> str:
        if isinstance(t, Leaf):
            return str(labels[t.index]) if labels is not None else str(t.index)
        return f"({rec(t.left)} {rec(t.right)})"

    return rec(tree)
