"""Fault-injection experiments for the Section 2 sensitivity claims.

Each function runs one of the paper's algorithms under a fault plan that
avoids the algorithm's critical nodes, then evaluates *reasonable
correctness*: the final answer must match a fault-free execution on some
graph G′ with ``G_0 ⊇ G′ ⊇ G_f``.  For the 0-sensitive algorithms here the
natural witness is G_f itself (the surviving component), which is what the
checks verify.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.algorithms import census as census_mod
from repro.algorithms import election as election_mod
from repro.algorithms import shortest_paths as sp_mod
from repro.algorithms.beta_synchronizer import BetaSynchronizer
from repro.algorithms.bridges import BridgeFinder
from repro.algorithms.synchronizer import initial_state as alpha_initial, wrap as alpha_wrap
from repro.core.automaton import FSSGA
from repro.network.graph import Network, Node
from repro.network.properties import bridges as true_bridges
from repro.network.state import NetworkState
from repro.runtime.api import StepObserver, run
from repro.runtime.batched import BatchedSynchronousEngine
from repro.runtime.churn import is_down_event
from repro.runtime.faults import FaultPlan
from repro.runtime.telemetry import MetricsRegistry

__all__ = [
    "FaultExperimentResult",
    "census_under_faults",
    "shortest_paths_under_faults",
    "kernel_fault_sweep",
    "fault_sweep_job",
    "kernel_churn_sweep",
    "churn_resilience_job",
    "resilience_curve",
    "bridges_under_faults",
    "synchronizer_fault_comparison",
]

RngLike = Union[int, np.random.Generator, None]


def _gen(rng: RngLike) -> np.random.Generator:
    return rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)


@dataclass
class FaultExperimentResult:
    """Outcome of one fault-injected execution."""

    reasonably_correct: bool
    faults_applied: int
    detail: dict = field(default_factory=dict)


def census_under_faults(
    net: Network,
    fault_plan: FaultPlan,
    k: Optional[int] = None,
    rng: RngLike = None,
    settle_steps: Optional[int] = None,
) -> FaultExperimentResult:
    """Flajolet–Martin census with mid-run faults (0-sensitive, E1/E14).

    Reasonable correctness per the paper: for every surviving connected
    component G′, the common estimate lies in ``[½·2^{ℓmin}, …]`` — we check
    the concrete guarantee that the final sketch of each component equals
    the OR of the sketches its nodes drew initially (the semi-lattice
    answer on a graph between G_0 and G_f), and report the estimates.
    """
    gen = _gen(rng)
    automaton, init = census_mod.build(net, k=k, rng=gen)
    initial_sketches = {v: init[v] for v in net}
    if settle_steps is None:
        settle_steps = 4 * net.num_nodes + 20
    # census reads neighbourhoods through ``view.support()`` — a genuinely
    # non-mod-thresh observable — so capability negotiation keeps it on the
    # reference engine (the fault plan itself no longer forces a fallback).
    res = run(
        automaton, net, init, rng=gen, fault_plan=fault_plan, until=settle_steps
    )
    final = res.final_state

    ok = True
    estimates = {}
    for comp in net.connected_components():
        expected = None
        for v in comp:
            s = initial_sketches[v]
            expected = s if expected is None else tuple(
                a | b for a, b in zip(expected, s)
            )
        for v in comp:
            if final[v] != expected:
                ok = False
        any_node = next(iter(comp))
        estimates[any_node] = census_mod.estimate(final[any_node])
    return FaultExperimentResult(
        reasonably_correct=ok,
        faults_applied=len(fault_plan.applied),
        detail={"estimates": estimates, "engine": res.engine},
    )


def shortest_paths_under_faults(
    net: Network,
    targets: list[Node],
    fault_plan: FaultPlan,
    rng: RngLike = None,
) -> FaultExperimentResult:
    """Distance labels with mid-run faults (0-sensitive, E3/E14).

    After faults stop and the network settles, every label must equal the
    true capped distance *in the surviving graph* — the G′ = G_f witness.
    """
    cap = net.num_nodes
    automaton, init = sp_mod.build(net, targets, cap=cap)
    # the distance-label programs lower to the engine IR, so this faulted
    # run executes on the vectorized engine under engine="auto".
    res = run(
        automaton,
        net,
        init,
        rng=_gen(rng),
        fault_plan=fault_plan,
        until="stable",
        max_steps=20 * cap + 200,
    )
    final = res.final_state
    ok = sp_mod.stabilized(net, final, targets, cap)
    return FaultExperimentResult(
        reasonably_correct=ok,
        faults_applied=len(fault_plan.applied),
        detail={"labels": sp_mod.labels(final), "engine": res.engine},
    )


def _kernel_sweep_done(counts: Mapping) -> bool:
    """Top-level (picklable) per-replica stop condition: ≤ 1 contender."""
    return election_mod.kernel_remaining_count(counts) <= 1


def kernel_fault_sweep(
    net: Network,
    fault_plan: FaultPlan,
    replicas: int = 8,
    rng: RngLike = None,
    max_steps: int = 5_000,
    metrics: Optional[MetricsRegistry] = None,
) -> FaultExperimentResult:
    """Election coin kernel under faults, swept over batched replicas (E14).

    All replicas run the Section 4.3 elimination kernel on the *same*
    network trajectory: the fault plan fires once inside the batched
    engine and every replica sees the shrinking topology at the same
    step.  Each replica stops once at most one contender remains among
    the surviving nodes.  The kernel is 0-sensitive — elimination is
    monotone and needs no recovery — so reasonable correctness is simply
    that every replica still converges to ≤ 1 remaining contender on the
    surviving graph (the G′ = G_f witness).  ``net`` is mutated by the
    plan; pass a copy to keep the original.  An optional ``metrics``
    registry is wired into the batched engine (steps, rng draws, fault
    events, quiescence-mask density).

    This is the in-process API (live network + plan);
    :func:`fault_sweep_job` is the same computation in campaign-job form.
    """
    gen = _gen(rng)
    # a fault_plan reused from an earlier sweep is auto-reset by the engine
    # constructor, so len(fault_plan.applied) below reflects *this* run
    engine = BatchedSynchronousEngine(
        net,
        election_mod.coin_kernel_programs(),
        election_mod.coin_kernel_init(net),
        replicas,
        randomness=2,
        rng=gen,
        fault_plan=fault_plan,
        metrics=metrics,
    )
    try:
        engine.run_until(_kernel_sweep_done, max_steps=max_steps)
        converged = np.ones(engine.replicas, dtype=bool)
    except RuntimeError:
        converged = np.fromiter(
            (
                _kernel_sweep_done(engine.replica_state_counts(r))
                for r in range(engine.replicas)
            ),
            dtype=bool,
            count=engine.replicas,
        )
    remaining = [
        election_mod.kernel_remaining_count(c) for c in engine.state_counts()
    ]
    return FaultExperimentResult(
        reasonably_correct=bool(converged.all()),
        faults_applied=len(fault_plan.applied),
        detail={
            "engine": "batched",
            "replicas": int(engine.replicas),
            "rounds": [int(r) for r in engine.rounds],
            "remaining": remaining,
            "live_nodes": int(engine.live_count),
        },
    )


def fault_sweep_job(
    rng=None,
    metrics=None,
    *,
    family: str = "repro.network.generators.complete_graph",
    n: int = 24,
    replicas: int = 8,
    num_faults: int = 4,
    fault_window: int = 6,
    fault_kinds: tuple = ("node", "edge"),
    max_steps: int = 5_000,
) -> dict:
    """Campaign-job form of :func:`kernel_fault_sweep` (k-sensitivity
    sweeps as sharded jobs).

    Pure and picklable under the ``repro.campaigns`` convention: the
    network comes from a dotted generator name + ``n`` and the fault plan
    is drawn *inside* the job from the job's own RNG
    (:func:`~repro.runtime.faults.random_fault_plan` over ``num_faults``
    events in ``[0, fault_window]``), so the whole experiment — topology,
    schedule, kernel trajectory — is a deterministic function of the job
    spec.
    """
    from repro.campaigns.spec import resolve_dotted
    from repro.runtime.faults import random_fault_plan

    gen = _gen(rng)
    net = resolve_dotted(family)(n)
    plan = random_fault_plan(
        net, num_faults, fault_window, rng=gen, kinds=tuple(fault_kinds)
    )
    res = kernel_fault_sweep(
        net, plan, replicas=replicas, rng=gen, max_steps=max_steps,
        metrics=metrics,
    )
    return {
        "family": family,
        "n": n,
        "num_faults": num_faults,
        "fault_window": fault_window,
        "reasonably_correct": bool(res.reasonably_correct),
        "faults_applied": int(res.faults_applied),
        "replicas": int(res.detail["replicas"]),
        "rounds": res.detail["rounds"],
        "remaining": [int(r) for r in res.detail["remaining"]],
        "live_nodes": int(res.detail["live_nodes"]),
    }


def kernel_churn_sweep(
    net: Network,
    churn_plan,
    replicas: int = 8,
    rng: RngLike = None,
    max_steps: int = 5_000,
    metrics: Optional[MetricsRegistry] = None,
) -> FaultExperimentResult:
    """Election coin kernel under general churn, over batched replicas (E22).

    The Section 2 sensitivity framework only deletes; this sweep extends
    it to the full topology-dynamics layer: the
    :class:`~repro.runtime.churn.ChurnPlan` may revive downed nodes or
    grow the network mid-election, and an arriving node boots in its
    event's declared state — booting as a *contender* re-opens a settled
    election, which is exactly the stress the resilience curve measures.
    All replicas share one topology trajectory (the plan fires once
    inside the batched engine, which keeps churn on the vector fast path
    via union-topology lowering).  A replica only counts as converged
    once the plan is exhausted *and* at most one contender remains: a
    pending arrival can re-add contenders, so nothing is settled while
    events are still due.  ``net`` is mutated by the plan; pass a copy to
    keep the original.
    """
    gen = _gen(rng)
    engine = BatchedSynchronousEngine(
        net,
        election_mod.coin_kernel_programs(),
        election_mod.coin_kernel_init(net),
        replicas,
        randomness=2,
        rng=gen,
        fault_plan=churn_plan,
        metrics=metrics,
    )

    def done(counts: Mapping) -> bool:
        return churn_plan.exhausted and _kernel_sweep_done(counts)

    try:
        engine.run_until(done, max_steps=max_steps)
        converged = np.ones(engine.replicas, dtype=bool)
    except RuntimeError:
        converged = np.fromiter(
            (
                done(engine.replica_state_counts(r))
                for r in range(engine.replicas)
            ),
            dtype=bool,
            count=engine.replicas,
        )
    remaining = [
        election_mod.kernel_remaining_count(c) for c in engine.state_counts()
    ]
    ups = len(churn_plan.applied) - sum(
        1 for ev in churn_plan.applied if is_down_event(ev)
    )
    return FaultExperimentResult(
        reasonably_correct=bool(converged.all()),
        faults_applied=len(churn_plan.applied),
        detail={
            "engine": "batched",
            "replicas": int(engine.replicas),
            "rounds": [int(r) for r in engine.rounds],
            "remaining": remaining,
            "live_nodes": int(engine.live_count),
            "up_events": int(ups),
            "converged": [bool(c) for c in converged],
        },
    )


def churn_resilience_job(
    rng=None,
    metrics=None,
    *,
    family: str = "repro.network.generators.complete_graph",
    n: int = 24,
    replicas: int = 8,
    num_events: int = 4,
    churn_window: int = 8,
    p_up: float = 0.4,
    max_steps: int = 5_000,
) -> dict:
    """Campaign-job form of :func:`kernel_churn_sweep` — one point of the
    accuracy-vs-churn-rate resilience curve (E22).

    Pure and picklable under the ``repro.campaigns`` convention: the
    network comes from a dotted generator name + ``n`` and the churn
    schedule is drawn inside the job from the job's own RNG
    (:func:`~repro.runtime.churn.random_churn_plan`, ``num_events``
    events over ``[0, churn_window]`` with an up-event fraction of
    ``p_up``; arrivals boot as fresh contenders).  ``churn_rate`` in the
    result is events per step of the churn window, the curve's x-axis.
    """
    from repro.campaigns.spec import resolve_dotted
    from repro.runtime.churn import random_churn_plan

    gen = _gen(rng)
    net = resolve_dotted(family)(n)
    plan = random_churn_plan(
        net,
        num_events,
        churn_window,
        rng=gen,
        p_up=p_up,
        boot_state=election_mod.K_REMAIN0,
    )
    res = kernel_churn_sweep(
        net, plan, replicas=replicas, rng=gen, max_steps=max_steps,
        metrics=metrics,
    )
    return {
        "family": family,
        "n": n,
        "num_events": num_events,
        "churn_window": churn_window,
        "churn_rate": num_events / max(churn_window, 1),
        "p_up": p_up,
        "reasonably_correct": bool(res.reasonably_correct),
        "events_applied": int(res.faults_applied),
        "up_events": int(res.detail["up_events"]),
        "replicas": int(res.detail["replicas"]),
        "rounds": res.detail["rounds"],
        "remaining": [int(r) for r in res.detail["remaining"]],
        "live_nodes": int(res.detail["live_nodes"]),
        "converged_fraction": float(np.mean(res.detail["converged"])),
    }


def resilience_curve(
    event_counts=(0, 2, 4, 8),
    *,
    family: str = "repro.network.generators.complete_graph",
    n: int = 24,
    replicas: int = 8,
    seeds: int = 4,
    churn_window: int = 8,
    p_up: float = 0.4,
    max_steps: int = 5_000,
    rng: RngLike = None,
) -> list[dict]:
    """Accuracy vs churn rate for the Section 4 election kernel (E22).

    In-process convenience over :func:`churn_resilience_job`: one curve
    point per entry of ``event_counts``, each aggregated over ``seeds``
    independently seeded jobs (spawned from ``rng``, so the whole curve
    is reproducible from one seed).  Points report the fraction of
    (seed, replica) runs that converged — the resilience measure — plus
    the mean rounds-to-convergence.  The campaign preset
    ``churn-resilience`` shards the same jobs across workers with
    resumable storage instead.
    """
    master = _gen(rng)
    streams = master.spawn(len(tuple(event_counts)) * seeds)
    curve = []
    for i, num_events in enumerate(event_counts):
        results = [
            churn_resilience_job(
                rng=streams[i * seeds + s],
                family=family,
                n=n,
                replicas=replicas,
                num_events=num_events,
                churn_window=churn_window,
                p_up=p_up,
                max_steps=max_steps,
            )
            for s in range(seeds)
        ]
        rounds = [r for res in results for r in res["rounds"]]
        curve.append(
            {
                "num_events": int(num_events),
                "churn_rate": num_events / max(churn_window, 1),
                "accuracy": float(
                    np.mean([res["converged_fraction"] for res in results])
                ),
                "mean_rounds": float(np.mean(rounds)),
                "seeds": seeds,
                "replicas": replicas,
                "n": n,
            }
        )
    return curve


def bridges_under_faults(
    net: Network,
    start: Node,
    fault_plan: FaultPlan,
    walk_steps: int,
    rng: RngLike = None,
) -> FaultExperimentResult:
    """Random-walk bridge finding with faults away from the agent (E2/E14).

    The agent is 1-sensitive: we require the plan to protect the agent's
    position (checked as faults are applied).  Correctness: every edge the
    walk flagged as a non-bridge is indeed not a bridge of the surviving
    graph or was not a bridge of some intermediate graph — the sound check
    is one-sided, since exceeding ±1 proves a cycle existed when it
    happened.
    """
    finder = BridgeFinder(net, start, rng=_gen(rng))
    if fault_plan.consumed:
        # this harness drives apply_due itself (no engine construction to
        # auto-reset the cursor), so rewind reused plans explicitly
        fault_plan.reset()
    agent_lost = False
    for _ in range(walk_steps):
        fault_plan.apply_due(net, finder.steps)
        if not finder.agent.alive:
            agent_lost = True
            break
        finder.step()
    surviving_bridges = true_bridges(net)
    # edges flagged as non-bridges must never be bridges of the initial
    # graph (a counter can only exceed ±1 by traversing a cycle through the
    # edge, and cycles only disappear under decreasing faults).
    flagged = finder.exceeded_edges()
    ok = not agent_lost
    detail = {
        "flagged_non_bridges": flagged,
        "surviving_bridges": surviving_bridges,
        "agent_lost": agent_lost,
    }
    return FaultExperimentResult(
        reasonably_correct=ok,
        faults_applied=len(fault_plan.applied),
        detail=detail,
    )


def synchronizer_fault_comparison(
    net: Network,
    fault_plan: FaultPlan,
    rounds: int = 30,
    rng: RngLike = None,
) -> dict:
    """α (FSSGA) vs β (tree) synchronizer under the same edge fault (E14).

    Runs both over ``rounds`` units of time; the fault plan is applied to a
    *copy* of the network for each synchronizer.  Returns how many rounds
    each completed: the β synchronizer stalls at the first tree fault,
    while the α synchronizer (a 0-sensitive balancing algorithm) keeps
    advancing clocks in the surviving component.
    """
    gen = _gen(rng)

    # --- β: tree-based
    beta_net = net.copy()
    beta = BetaSynchronizer(beta_net)
    beta_rounds = 0
    plan_events = fault_plan.events()
    for t in range(rounds):
        for ev in plan_events:
            if ev.time == t:
                ev.apply(beta_net)
        if beta.pulse():
            beta_rounds += 1

    # --- α: a trivial inner automaton (single state) wrapped by the
    # synchronizer; clocks advance whenever no neighbour lags.  Clock
    # advances are read off the per-step change events via an observer.
    alpha_net = net.copy()
    inner = FSSGA({"idle"}, lambda own, view: "idle", name="noop")
    composite = alpha_wrap(inner)
    init = alpha_initial(NetworkState.uniform(alpha_net, "idle"))
    unwrapped = {v: 0 for v in alpha_net}

    class _ClockObserver(StepObserver):
        def on_step(self, time, changes, faults):
            for v, (old, new) in changes.items():
                if old[2] != new[2]:
                    unwrapped[v] += 1

    alpha_plan = FaultPlan(plan_events)
    run(
        composite,
        alpha_net,
        init,
        rng=gen,
        fault_plan=alpha_plan,
        until=rounds,
        observers=(_ClockObserver(),),
    )
    alpha_min_clock = min(unwrapped[v] for v in alpha_net) if len(alpha_net) else 0

    return {
        "beta_rounds_completed": beta_rounds,
        "beta_broken": beta.broken,
        "alpha_min_clock": alpha_min_clock,
        "alpha_rounds_attempted": rounds,
    }
