"""Critical-node maps χ for the paper's algorithm families.

Section 2 defines sensitivity via a function χ(σ) from instantaneous
descriptions to node subsets.  The paper's typical values:

* decentralized algorithms (Flajolet–Martin census, shortest paths):
  χ = ∅, sensitivity 0;
* agent algorithms (bridge finding, greedy tourist): χ = {agent position},
  sensitivity 1 (2 while asynchronously "in transit");
* arm-based algorithms (Milgram traversal): χ = the arm, Θ(n) in the
  worst case;
* tree-based algorithms (β synchronizer): χ = the spanning tree's internal
  nodes, Θ(n).
"""

from __future__ import annotations

from typing import Optional

from repro.network.graph import Network, Node
from repro.network.state import NetworkState

__all__ = [
    "chi_decentralized",
    "chi_agent",
    "chi_arm",
    "chi_beta_synchronizer",
    "max_criticality",
]


def chi_decentralized(net: Network, state: Optional[NetworkState] = None) -> set[Node]:
    """χ ≡ ∅: no node is critical (0-sensitive algorithms)."""
    return set()


def chi_agent(position: Optional[Node]) -> set[Node]:
    """χ = the agent's current position (1-sensitive algorithms)."""
    return set() if position is None else {position}


def chi_arm(net: Network, state: NetworkState, arm_statuses: tuple = ("arm", "hand")) -> set[Node]:
    """χ = the arm: every node whose (composite) state marks it as part of
    the Milgram arm or hand.  Θ(n) in the worst case — a path graph's arm
    spans the whole graph."""
    out: set[Node] = set()
    for v, q in state.items():
        status = q[1] if isinstance(q, tuple) and len(q) >= 2 else q
        if status in arm_statuses:
            out.add(v)
    return out


def chi_beta_synchronizer(sync) -> set[Node]:
    """χ = the spanning tree's internal nodes plus the root (Θ(n)).

    ``sync`` is a :class:`repro.algorithms.beta_synchronizer.BetaSynchronizer`.
    """
    return sync.critical_nodes()


def max_criticality(chi_values: list[set]) -> int:
    """The observed sensitivity lower bound: max |χ(σ)| over an execution."""
    return max((len(s) for s in chi_values), default=0)
