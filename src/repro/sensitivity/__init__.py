"""The k-sensitivity fault-tolerance framework (paper, Section 2).

A deterministic map χ from network states to node subsets designates the
*critical nodes*; an algorithm is k-sensitive if ``|χ(σ)| <= k`` always and
every execution without critical failures stays *reasonably correct*:
there is a graph G′ between the initial topology and the surviving one
whose fault-free execution yields the same answer.

:mod:`repro.sensitivity.critical` supplies χ maps for the paper's
algorithms (∅ for decentralized, the agent position for agent algorithms,
the spanning-tree internals for the β synchronizer);
:mod:`repro.sensitivity.harness` runs fault-injected executions and checks
reasonable correctness for the concrete experiments (E14), and extends
the framework past deletions: :func:`~repro.sensitivity.harness.kernel_churn_sweep`
stresses the Section 4 election kernel under general topology dynamics
(outages *and* arrivals) and
:func:`~repro.sensitivity.harness.resilience_curve` aggregates it into an
accuracy-vs-churn-rate curve (E22).
"""

from repro.sensitivity.critical import (
    chi_decentralized,
    chi_agent,
    chi_arm,
    chi_beta_synchronizer,
    max_criticality,
)
from repro.sensitivity.harness import (
    census_under_faults,
    shortest_paths_under_faults,
    kernel_fault_sweep,
    fault_sweep_job,
    kernel_churn_sweep,
    churn_resilience_job,
    resilience_curve,
    bridges_under_faults,
    synchronizer_fault_comparison,
    FaultExperimentResult,
)

__all__ = [
    "chi_decentralized",
    "chi_agent",
    "chi_arm",
    "chi_beta_synchronizer",
    "max_criticality",
    "census_under_faults",
    "shortest_paths_under_faults",
    "kernel_fault_sweep",
    "fault_sweep_job",
    "kernel_churn_sweep",
    "churn_resilience_job",
    "resilience_curve",
    "bridges_under_faults",
    "synchronizer_fault_comparison",
    "FaultExperimentResult",
]
