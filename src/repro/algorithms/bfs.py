"""Mod-3 breadth-first search (paper, Section 4.3, Algorithm 4.1).

Each node carries booleans ``originator`` / ``target``, a label in
``{0, 1, 2, ⋆}`` and a status in ``{waiting, found, failed}``.  Labels
flood outward from the unique originator as the distance mod 3: if x is
adjacent to y and y's label is (mod 3) one more than x's, y is a
*successor* of x.  A labelled target reports ``found``, which propagates
back along predecessor edges (skipping nodes that already have a found
predecessor, to avoid reporting non-shortest paths); a node whose
successors have all failed — and which has no unlabelled neighbour left —
reports ``failed``.

The state alphabet is the cartesian product
``{T,F}² × {0,1,2,⋆} × {waiting,found,failed}`` (48 states), the paper's
"variables as state components" trick.

Engineering note (documented deviation): the paper's failure clause "all
successors have status failed" is vacuously true for a node whose deeper
neighbours are still unlabelled (they are not successors *yet*), which
would declare failure prematurely in a synchronous run.  We add the guard
"and no neighbour is unlabelled", a thresh-atom condition, restoring the
intended semantics.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.core.automaton import FSSGA, NeighborhoodView
from repro.core.modthresh import FALSE, ModThreshProgram, Or, at_least
from repro.network.graph import Network, Node
from repro.network.state import NetworkState

__all__ = [
    "STAR",
    "WAITING",
    "FOUND",
    "FAILED",
    "ALPHABET",
    "BFSState",
    "build",
    "rule",
    "programs",
    "run_search",
    "label_of",
    "status_of",
    "originator_status",
    "labels_match_distance",
]

STAR = "*"
WAITING = "waiting"
FOUND = "found"
FAILED = "failed"

LABELS = (0, 1, 2, STAR)
STATUSES = (WAITING, FOUND, FAILED)

#: Q = {originator} × {target} × label × status, as 4-tuples.
ALPHABET = frozenset(
    itertools.product((False, True), (False, True), LABELS, STATUSES)
)

# Precomputed state groups for the thresh queries below.
_WITH_LABEL = {
    lab: tuple(q for q in ALPHABET if q[2] == lab) for lab in LABELS
}
_WITH_LABEL_STATUS = {
    (lab, st): tuple(q for q in ALPHABET if q[2] == lab and q[3] == st)
    for lab in (0, 1, 2)
    for st in STATUSES
}


def label_of(q: tuple) -> object:
    return q[2]


def status_of(q: tuple) -> str:
    return q[3]


class BFSState:
    """Constructor helpers for the composite 4-tuple states."""

    @staticmethod
    def initial(originator: bool, target: bool) -> tuple:
        return (originator, target, STAR, WAITING)


def rule(own: tuple, view: NeighborhoodView) -> tuple:
    """Algorithm 4.1, one activation."""
    orig, targ, label, status = own

    if orig and label == STAR:
        return (orig, targ, 0, status)

    if label == STAR:
        for x in (0, 1, 2):
            if view.any(*_WITH_LABEL[x]):
                new_status = FOUND if targ else status
                return (orig, targ, (x + 1) % 3, new_status)
        return own

    succ = (label + 1) % 3
    pred = (label - 1) % 3
    if status == WAITING:
        # "any predecessor has status found -> do nothing" (avoid
        # reporting non-shortest paths).
        if view.any(*_WITH_LABEL_STATUS[(pred, FOUND)]):
            return own
        if view.any(*_WITH_LABEL_STATUS[(succ, FOUND)]):
            return (orig, targ, label, FOUND)
        # all successors failed — with the no-unlabelled-neighbour guard.
        no_star = view.none(*_WITH_LABEL[STAR])
        no_live_succ = view.none(
            *_WITH_LABEL_STATUS[(succ, WAITING)],
            *_WITH_LABEL_STATUS[(succ, FOUND)],
        )
        if no_star and no_live_succ:
            return (orig, targ, label, FAILED)
    return own


def _any_of(states: tuple):
    """``∨_q μ_q >= 1`` over a finite state group (FALSE when empty)."""
    if not states:
        return FALSE
    return Or(tuple(at_least(q, 1) for q in states))


def programs() -> dict[tuple, ModThreshProgram]:
    """Algorithm 4.1 as one explicit mod-thresh cascade per own state.

    Branch-for-branch equivalent to :func:`rule` (every query the rule
    makes is a thresh atom over a precomputed state group); built once per
    call over the full 48-state alphabet so ``repro.run`` can dispatch BFS
    to the vectorized engine.
    """
    out: dict[tuple, ModThreshProgram] = {}
    for own in ALPHABET:
        orig, targ, label, status = own
        name = f"bfs[{own!r}]"
        if orig and label == STAR:
            out[own] = ModThreshProgram(
                clauses=(), default=(orig, targ, 0, status), name=name
            )
        elif label == STAR:
            new_status = FOUND if targ else status
            out[own] = ModThreshProgram(
                clauses=tuple(
                    (_any_of(_WITH_LABEL[x]), (orig, targ, (x + 1) % 3, new_status))
                    for x in (0, 1, 2)
                ),
                default=own,
                name=name,
            )
        elif status == WAITING:
            succ = (label + 1) % 3
            pred = (label - 1) % 3
            all_succ_failed = ~_any_of(_WITH_LABEL[STAR]) & ~_any_of(
                _WITH_LABEL_STATUS[(succ, WAITING)]
                + _WITH_LABEL_STATUS[(succ, FOUND)]
            )
            out[own] = ModThreshProgram(
                clauses=(
                    (_any_of(_WITH_LABEL_STATUS[(pred, FOUND)]), own),
                    (
                        _any_of(_WITH_LABEL_STATUS[(succ, FOUND)]),
                        (orig, targ, label, FOUND),
                    ),
                    (all_succ_failed, (orig, targ, label, FAILED)),
                ),
                default=own,
                name=name,
            )
        else:
            out[own] = ModThreshProgram(clauses=(), default=own, name=name)
    return out


def build(
    net: Network,
    originator: Node,
    targets: Iterable[Node] = (),
) -> tuple[FSSGA, NetworkState]:
    """The BFS automaton with the given originator and target set.

    Built from the explicit :func:`programs` cascades (equivalent to
    :func:`rule`), so ``repro.run`` auto-selects the vectorized engine.
    """
    if originator not in net:
        raise KeyError(f"originator {originator!r} not in network")
    target_set = set(targets)
    missing = target_set - set(net.nodes())
    if missing:
        raise KeyError(f"targets not in network: {sorted(map(repr, missing))}")
    automaton = FSSGA(ALPHABET, programs(), name="bfs")
    init = NetworkState.from_function(
        net, lambda v: BFSState.initial(v == originator, v in target_set)
    )
    return automaton, init


def run_search(
    net: Network,
    originator: Node,
    targets: Iterable[Node] = (),
    **kwargs,
):
    """Run the BFS search to its fixed point through :func:`repro.run` and
    return the :class:`~repro.runtime.api.RunResult` (the verdict is
    :func:`originator_status` of ``final_state``)."""
    from repro.runtime.api import run

    automaton, init = build(net, originator, targets)
    return run(automaton, net, init, **kwargs)


def originator_status(state: NetworkState, originator: Node) -> str:
    """The search verdict at the originator."""
    return status_of(state[originator])


def labels_match_distance(
    net: Network, state: NetworkState, originator: Node
) -> bool:
    """True iff every reachable node's label equals its distance mod 3 and
    unreachable nodes are unlabelled."""
    dist = net.bfs_distances([originator]) if originator in net else {}
    for v in net:
        lab = label_of(state[v])
        if v in dist:
            if lab != dist[v] % 3:
                return False
        elif lab != STAR:
            return False
    return True
