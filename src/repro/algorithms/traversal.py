"""Milgram's graph traversal in the FSSGA model (paper, Section 4.5,
Algorithm 4.3).

A single *hand* (agent) extends an *arm* — an induced path from the
originator — one node at a time.  The arm never touches or crosses itself:
nodes whose status lies in {arm, hand} always form a sequence
``v_0 … v_k`` with ``v_i`` adjacent to ``v_j`` iff ``i = j ± 1``.  When the
hand can extend, it elects one eligible blank neighbour (local symmetry
breaking via the Section 4.4 coin-flip elimination subroutine); when it
cannot, it retracts, marking its node *visited*.  The arm traces a
scan-first-search spanning tree, the hand moves exactly ``2n - 2`` times,
and each extension costs O(log n) expected rounds, for O(n log n) total.

Engineering notes (documented deviations from the informal pseudocode):

* The paper alternates even steps (refreshing a ``by-arm`` marker on nodes
  adjacent to the arm) with odd steps (agent actions), so that the hand
  only extends onto nodes *not* adjacent to the arm.  We enforce the same
  eligibility *at flip time*: a blank node participates in an election only
  if it currently has no arm neighbour (a thresh query).  This removes the
  parity machinery without weakening the invariant — the elected node is
  adjacent to no arm node at election time, and the old hand (its future
  predecessor) only becomes arm afterwards.
* Retraction follows the paper: a non-originator arm node with at most one
  {arm, hand} neighbour becomes the hand; the originator retracts only
  when it has no {arm, hand} neighbour.
* A hand that finds no election participants (every blank neighbour is
  arm-adjacent, or it has no blank neighbour at all — the paper's "no
  neighbour is blank" with by-arm marking) becomes visited.

State = (originator?, status, sub) with status ∈ {blank, arm, hand,
visited} and election substates sub ∈ {idle, flip, wait, notails, elect,
heads, tails, elim} — 64 composite states, r = 2 random bits per
activation.
"""

from __future__ import annotations

import itertools
from typing import Optional, Union

import numpy as np

from repro.core.automaton import NeighborhoodView, ProbabilisticFSSGA
from repro.network.graph import Network, Node
from repro.network.state import NetworkState
from repro.runtime.simulator import SynchronousSimulator

__all__ = [
    "BLANK",
    "ARM",
    "HAND",
    "VISITED",
    "ALPHABET",
    "rule",
    "build",
    "hand_position",
    "arm_path_valid",
    "all_visited",
    "TraversalRun",
    "run_traversal",
]

BLANK = "blank"
ARM = "arm"
HAND = "hand"
VISITED = "visited"
STATUSES = (BLANK, ARM, HAND, VISITED)

IDLE = "idle"
SUB_FLIP = "flip"
SUB_WAIT = "wait"
SUB_NOTAILS = "notails"
SUB_ELECT = "elect"
HEADS = "heads"
TAILS = "tails"
ELIM = "elim"
SUBS = (IDLE, SUB_FLIP, SUB_WAIT, SUB_NOTAILS, SUB_ELECT, HEADS, TAILS, ELIM)

ALPHABET = frozenset(itertools.product((False, True), STATUSES, SUBS))

# state groups used by the thresh queries
_HAND_FLIP = tuple(q for q in ALPHABET if q[1] == HAND and q[2] == SUB_FLIP)
_HAND_NOTAILS = tuple(q for q in ALPHABET if q[1] == HAND and q[2] == SUB_NOTAILS)
_HAND_ELECT = tuple(q for q in ALPHABET if q[1] == HAND and q[2] == SUB_ELECT)
_ARM_STATES = tuple(q for q in ALPHABET if q[1] == ARM)
_ARM_OR_HAND = tuple(q for q in ALPHABET if q[1] in (ARM, HAND))
_COIN_TAILS = tuple(q for q in ALPHABET if q[1] == BLANK and q[2] == TAILS)
_COIN_ANY = tuple(
    q for q in ALPHABET if q[1] == BLANK and q[2] in (HEADS, TAILS, ELIM)
)


def rule(own: tuple, view: NeighborhoodView, draw: int) -> tuple:
    """One synchronous activation of the traversal automaton."""
    orig, status, sub = own
    coin = HEADS if draw == 0 else TAILS

    if status == VISITED:
        return own

    if status == BLANK:
        if view.any(*_HAND_ELECT):
            if sub == TAILS:
                return (orig, HAND, IDLE)  # I've been elected: extend
            return (orig, BLANK, IDLE)  # clear election remains
        if view.any(*_HAND_FLIP):
            if sub == HEADS:
                return (orig, BLANK, ELIM)
            if sub == TAILS:
                return (orig, BLANK, coin)
            if sub == IDLE and view.none(*_ARM_STATES):
                return (orig, BLANK, coin)  # eligible: join the election
            return own  # eliminated, or ineligible (arm-adjacent)
        if view.any(*_HAND_NOTAILS):
            if sub == HEADS:
                return (orig, BLANK, coin)  # re-run the round
            return own
        return own

    if status == HAND:
        if sub in (IDLE, SUB_NOTAILS, SUB_FLIP):
            # idle -> announce flip; flip/notails -> wait for the coins.
            return (orig, HAND, SUB_FLIP) if sub == IDLE else (orig, HAND, SUB_WAIT)
        if sub == SUB_WAIT:
            if view.none(*_COIN_ANY):
                return (orig, VISITED, IDLE)  # nobody eligible: retract
            if view.none(*_COIN_TAILS):
                return (orig, HAND, SUB_NOTAILS)
            if view.group_fewer_than(_COIN_TAILS, 2):
                return (orig, HAND, SUB_ELECT)  # exactly one tails
            return (orig, HAND, SUB_FLIP)  # eliminate heads, re-flip
        if sub == SUB_ELECT:
            return (orig, ARM, IDLE)  # the elected neighbour takes over
        return own

    # status == ARM: retraction check (paper's odd-step arm clause)
    if orig:
        if view.group_fewer_than(_ARM_OR_HAND, 1):
            return (orig, HAND, IDLE)
    else:
        if view.group_fewer_than(_ARM_OR_HAND, 2):
            return (orig, HAND, IDLE)
    return own


def build(
    net: Network, originator: Node
) -> tuple[ProbabilisticFSSGA, NetworkState]:
    """The traversal automaton with the hand initially at ``originator``."""
    if originator not in net:
        raise KeyError(f"originator {originator!r} not in network")
    automaton = ProbabilisticFSSGA(ALPHABET, 2, rule, name="milgram-traversal")
    init = NetworkState.from_function(
        net,
        lambda v: (True, HAND, IDLE) if v == originator else (False, BLANK, IDLE),
    )
    return automaton, init


def hand_position(state: NetworkState) -> Optional[Node]:
    """The unique hand node (None once the traversal has finished)."""
    hands = [v for v, q in state.items() if q[1] == HAND]
    if len(hands) > 1:
        raise RuntimeError(f"multiple hands: {hands!r}")
    return hands[0] if hands else None


def arm_path_valid(net: Network, state: NetworkState) -> bool:
    """Milgram's invariant: the {arm, hand} nodes form an induced path
    ``v_0 … v_k`` starting at the originator, with ``v_i ~ v_j`` iff
    ``i = j ± 1``."""
    chain_nodes = [v for v, q in state.items() if q[1] in (ARM, HAND)]
    if not chain_nodes:
        return True
    sub = net.subgraph(chain_nodes)
    degrees = sorted(sub.degree(v) for v in chain_nodes)
    if len(chain_nodes) == 1:
        return degrees == [0]
    # an induced path: exactly two degree-1 endpoints, the rest degree 2,
    # and connected.
    if degrees[:2] != [1, 1] or any(d != 2 for d in degrees[2:]):
        return False
    if not sub.is_connected():
        return False
    # endpoints must be the originator (v_0) and/or the hand (v_k)
    endpoints = {v for v in chain_nodes if sub.degree(v) == 1}
    orig_nodes = {v for v in chain_nodes if state[v][0]}
    hand_nodes = {v for v in chain_nodes if state[v][1] == HAND}
    if not orig_nodes <= endpoints:
        return False
    if not hand_nodes <= endpoints:
        return False
    return True


def all_visited(state: NetworkState) -> bool:
    return all(q[1] == VISITED for q in state.values())


class TraversalRun:
    """Outcome of a full traversal: hand itinerary and step count."""

    def __init__(self) -> None:
        self.hand_positions: list[Node] = []
        self.steps = 0

    @property
    def hand_moves(self) -> int:
        """Number of times the hand changed nodes (paper: exactly 2n-2)."""
        return max(0, len(self.hand_positions) - 1)


def run_traversal(
    net: Network,
    originator: Node,
    rng: Union[int, np.random.Generator, None] = None,
    max_steps: int = 5_000_000,
    check_invariant: bool = False,
) -> TraversalRun:
    """Run the traversal to completion (all nodes visited).

    With ``check_invariant=True`` the arm-path invariant is asserted at
    every step (slow; for tests).
    """
    automaton, init = build(net, originator)
    sim = SynchronousSimulator(net, automaton, init, rng=rng)
    run = TraversalRun()
    run.hand_positions.append(originator)
    while not all_visited(sim.state):
        if sim.time >= max_steps:
            raise RuntimeError(f"traversal incomplete after {max_steps} steps")
        sim.step()
        run.steps = sim.time
        if check_invariant and not arm_path_valid(net, sim.state):
            raise AssertionError(f"arm invariant violated at step {sim.time}")
        pos = hand_position(sim.state)
        if pos is not None and pos != run.hand_positions[-1]:
            run.hand_positions.append(pos)
    return run
