"""The α synchronizer as an FSSGA program transformer (paper, Section 4.2).

Given an FSSGA ``(Q, f)`` designed for the *synchronous* model, the
synchronizer produces ``(Q × Q × {0,1,2}, f_s)`` that simulates it in the
*asynchronous* model.  Each node carries ``(current, previous, clock mod 3)``.
Adjacent clocks always differ by at most 1, so mod-3 comparison
distinguishes "behind" / "same" / "ahead":

* any neighbour behind (clock ``i-1``)  → WAIT, change nothing;
* neighbour at the same clock ``i``     → feed its *current* state;
* neighbour ahead (clock ``i+1``)       → feed its *previous* state
  (that was its state at round ``i``).

On advancing, a node computes the inner transition on those effective
states, shifts current → previous, and increments its clock.

Two equivalent implementations:

* :func:`transform_programs` — the paper's formal construction: each inner
  ``f[q]`` is given as a sequential program ``(W, w0, p, β)`` and the
  composite ``f_s[q_c, q_p, i]`` is the sequential program
  ``(W ∪ {WAIT}, w0, p', β')`` exactly as printed in Section 4.2.
* :func:`wrap` / :func:`wrap_probabilistic` — a rule-level wrapper for any
  FSSGA rule.  It reconstructs the effective inner-state multiset from the
  composite neighbour counts.  (Thresh/mod atoms over a *sum* of two
  composite counts expand to finite boolean combinations of atoms over the
  summands, so this is still mod-thresh expressible; the wrapper computes
  the sums directly as an engine-level optimisation.)

The key guarantees, exercised in the tests and benchmarks (E7):

* adjacent clocks never differ by more than 1;
* if every node activates at least once per unit time, every clock
  advances at least once per unit time;
* the sequence of states a node passes through equals the synchronous
  execution of the inner automaton.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Union

from repro.core.automaton import (
    FSSGA,
    NeighborhoodView,
    ProbabilisticFSSGA,
)
from repro.core.sequential import SequentialProgram
from repro.network.graph import Network
from repro.network.state import NetworkState, State

__all__ = [
    "WAIT",
    "initial_state",
    "wrap",
    "wrap_probabilistic",
    "transform_programs",
    "clock_of",
    "current_of",
    "clocks_consistent",
]

#: The distinguished extra working state of the Section 4.2 construction.
WAIT = ("WAIT",)


def initial_state(inner_init: NetworkState) -> NetworkState:
    """Lift an inner initial state to composite ``(q, q, 0)`` triples."""
    return NetworkState({v: (q, q, 0) for v, q in inner_init.items()})


def clock_of(composite: tuple) -> int:
    """The mod-3 clock component."""
    return composite[2]


def current_of(composite: tuple) -> State:
    """The inner current-state component."""
    return composite[0]


def _effective_counts(view: NeighborhoodView, clock: int) -> Union[Counter, None]:
    """The inner-state multiset a node at ``clock`` should process, or
    ``None`` if some neighbour is behind (→ WAIT).

    Engine-level reconstruction of the per-state sums described in the
    module docstring.
    """
    behind = (clock - 1) % 3
    eff: Counter = Counter()
    for (q_c, q_p, i), count in view._counts.items():
        if i == behind:
            return None
        if i == clock:
            eff[q_c] += count
        else:  # i == ahead
            eff[q_p] += count
    return eff


def wrap(inner: FSSGA, name: str = "") -> FSSGA:
    """The synchronized composite automaton for a deterministic inner FSSGA.

    The composite alphabet is ``Q × Q × {0,1,2}``.
    """
    alphabet = {
        (qc, qp, i)
        for qc in inner.alphabet
        for qp in inner.alphabet
        for i in range(3)
    }

    def rule(own: tuple, view: NeighborhoodView) -> tuple:
        q_c, q_p, i = own
        eff = _effective_counts(view, i)
        if eff is None:
            return own  # WAIT
        new_q = inner.transition(q_c, eff)
        return (new_q, q_c, (i + 1) % 3)

    return FSSGA(alphabet, rule, name=name or f"alpha({inner.name or 'inner'})")


def wrap_probabilistic(inner: ProbabilisticFSSGA, name: str = "") -> ProbabilisticFSSGA:
    """The synchronized composite for a probabilistic inner FSSGA."""
    alphabet = {
        (qc, qp, i)
        for qc in inner.alphabet
        for qp in inner.alphabet
        for i in range(3)
    }

    def rule(own: tuple, view: NeighborhoodView, draw: int) -> tuple:
        q_c, q_p, i = own
        eff = _effective_counts(view, i)
        if eff is None:
            return own
        new_q = inner.transition(q_c, eff, draw)
        return (new_q, q_c, (i + 1) % 3)

    return ProbabilisticFSSGA(
        alphabet,
        inner.randomness,
        rule,
        name=name or f"alpha({inner.name or 'inner'})",
    )


def transform_programs(
    programs: Mapping[State, SequentialProgram]
) -> dict[tuple, SequentialProgram]:
    """The paper's formal construction, verbatim.

    ``programs`` maps each inner state ``q_c`` to the sequential program
    ``(W, w0, p, β)`` for ``f[q_c]``.  Returns the mapping
    ``(q_c, q_p, i) → (W ∪ {WAIT}, w0, p', β')`` with::

        p'(w, (q'_c, q'_p, i')) = WAIT              if w = WAIT or i' = i-1
                                = p(w, q'_c)        if w ≠ WAIT and i' = i
                                = p(w, q'_p)        if w ≠ WAIT and i' = i+1

        β'(WAIT) = (q_c, q_p, i)
        β'(w)    = (β(w), q_c, (i+1) mod 3)

    Feed the result to :meth:`repro.core.automaton.FSSGA.from_programs`.
    """
    inner_states = list(programs.keys())
    out: dict[tuple, SequentialProgram] = {}
    for q_c in inner_states:
        base = programs[q_c]
        for q_p in inner_states:
            for i in range(3):
                out[(q_c, q_p, i)] = _composite_program(base, q_c, q_p, i)
    return out


def _composite_program(
    base: SequentialProgram, q_c: State, q_p: State, i: int
) -> SequentialProgram:
    if WAIT in base.working_states:
        raise ValueError("inner working states collide with the WAIT sentinel")
    working = frozenset(base.working_states) | {WAIT}
    behind = (i - 1) % 3

    def p_prime(w, neighbor: tuple):
        nq_c, nq_p, ni = neighbor
        if w == WAIT or ni == behind:
            return WAIT
        if ni == i:
            return base.process(w, nq_c)
        return base.process(w, nq_p)

    def beta_prime(w):
        if w == WAIT:
            return (q_c, q_p, i)
        return (base.output(w), q_c, (i + 1) % 3)

    return SequentialProgram(
        working_states=working,
        start=base.start,
        process=p_prime,
        output=beta_prime,
        name=f"alpha[{q_c!r},{q_p!r},{i}]",
    )


def clocks_consistent(net: Network, state: NetworkState) -> bool:
    """True iff every adjacent pair of clocks differs by at most 1 (mod 3).

    With values in {0,1,2} this means no edge joins clocks ``i`` and
    ``i+1+1 = i-1`` simultaneously in a way exceeding one round; concretely
    a difference of exactly "2 mod 3" is the same as -1, so all mod-3
    differences are legal except none — the true invariant (from the
    underlying unbounded clocks) is checked by the simulator-level tests;
    here we verify the mod-3 encoding never shows an edge with both
    endpoints claiming to be two apart, which cannot be represented — so
    this function checks the *unwrapped* clock bookkeeping kept by tests.
    """
    # Mod-3 clocks cannot themselves witness a violation; tests track
    # unwrapped clocks.  We still verify states are well-formed triples.
    for v in net:
        q = state[v]
        if not (isinstance(q, tuple) and len(q) == 3 and q[2] in (0, 1, 2)):
            return False
    return True
