"""The greedy tourist (paper, Section 4.6).

Let T be the set of unvisited nodes (initially all of V).  The agent always
follows a shortest path to T; visiting a node removes it from T.  By the
nearest-neighbour TSP analysis ([20] Rosenkrantz–Stearns–Lewis) the whole
graph is traversed in O(n log n) agent steps.  Realized over the FSSGA
substrate, each step costs a shortest-path BFS (Section 4.3) plus an
O(log Δ) local symmetry-breaking election (Section 4.4), giving
O(n log² n) total time.

Sensitivity: 1 — the only critical node is the agent's position (2 in an
asynchronous adaptation, while the tourist is "in transit").  Contrast with
Milgram's traversal, whose arm makes Θ(n) nodes critical (E11/E14).

The implementation keeps the agent explicit and recomputes the distance
field with the *decentralized* min+1 relaxation of Section 2.2 after every
topology change, counting the rounds that relaxation takes; the per-move
neighbour election runs the real coin-flip subroutine so the measured
"FSSGA time" includes the Θ(log d) symmetry-breaking cost.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro.network.graph import Network, Node

__all__ = ["GreedyTourist", "run_greedy_traversal"]


class GreedyTourist:
    """The Section 4.6 agent with cost accounting.

    Attributes
    ----------
    agent_steps:
        Edge traversals by the tourist (paper: O(n log n) total).
    fssga_time:
        Modeled synchronous rounds: per agent step, the coin-flip election
        rounds actually used to break symmetry among equally-good
        neighbours, plus one round for the move itself.  BFS label
        maintenance is pipelined in the FSSGA realization, contributing the
        extra O(log n) factor the paper cites; we also track the relaxation
        rounds separately in :attr:`relaxation_rounds`.
    """

    def __init__(
        self,
        net: Network,
        start: Node,
        rng: Union[int, np.random.Generator, None] = None,
    ) -> None:
        if start not in net:
            raise KeyError(f"start node {start!r} not in network")
        self.net = net
        self.position = start
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.unvisited: set[Node] = set(net.nodes()) - {start}
        self.itinerary: list[Node] = [start]
        self.agent_steps = 0
        self.fssga_time = 0
        self.relaxation_rounds = 0

    @property
    def done(self) -> bool:
        return not self.unvisited

    def _distance_field(self) -> dict[Node, int]:
        """Distances to the unvisited set via synchronous min+1 relaxation
        (the Section 2.2 algorithm), counting rounds until stable."""
        cap = self.net.num_nodes
        label = {v: 0 if v in self.unvisited else cap for v in self.net}
        rounds = 0
        changed = True
        while changed:
            changed = False
            new = {}
            for v in self.net:
                if v in self.unvisited:
                    new[v] = 0
                    continue
                best = min((label[u] for u in self.net.neighbors(v)), default=cap)
                new[v] = min(best + 1, cap)
                if new[v] != label[v]:
                    changed = True
            label = new
            rounds += 1
        self.relaxation_rounds += rounds
        return label

    def _elect(self, candidates: list[Node]) -> tuple[Node, int]:
        """Coin-flip elimination among the candidates (Section 4.4 style);
        returns (winner, rounds used)."""
        rounds = 0
        pool = list(candidates)
        while len(pool) > 1:
            rounds += 1
            flips = self.rng.integers(0, 2, size=len(pool))
            tails = [v for v, f in zip(pool, flips) if f == 1]
            if len(tails) == 0:
                continue  # notails: re-run without elimination
            pool = tails  # heads eliminated
        return pool[0], max(rounds, 1)

    def step(self) -> Node:
        """One tourist move toward the nearest unvisited node."""
        if self.done:
            raise RuntimeError("traversal already complete")
        dist = self._distance_field()
        nbrs = sorted(self.net.neighbors(self.position), key=repr)
        if not nbrs:
            raise RuntimeError(f"tourist stranded at {self.position!r}")
        best = min(dist[u] for u in nbrs)
        if best >= self.net.num_nodes:
            raise RuntimeError("no unvisited node reachable (network disconnected)")
        candidates = [u for u in nbrs if dist[u] == best]
        target, rounds = self._elect(candidates)
        self.position = target
        self.agent_steps += 1
        self.fssga_time += rounds + 1
        self.itinerary.append(target)
        self.unvisited.discard(target)
        return target

    def run(self, max_steps: Optional[int] = None) -> None:
        """Walk until every reachable node is visited."""
        if max_steps is None:
            n = self.net.num_nodes
            max_steps = max(64, 8 * n * max(1, math.ceil(math.log2(max(n, 2)))))
        while not self.done:
            if self.agent_steps >= max_steps:
                raise RuntimeError(f"traversal incomplete after {max_steps} agent steps")
            self.step()


def run_greedy_traversal(
    net: Network,
    start: Node,
    rng: Union[int, np.random.Generator, None] = None,
) -> GreedyTourist:
    """Run a complete greedy traversal and return the tourist with its
    accounting fields populated."""
    tourist = GreedyTourist(net, start, rng)
    tourist.run()
    return tourist
