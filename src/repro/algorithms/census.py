"""Flajolet–Martin census (paper, Section 1).

Approximately counts the nodes of a network of unknown size.  Each node
holds a k-bit sketch; initially each node probabilistically sets (at most)
one bit — bit ``i`` with probability ``2^-i`` (1-indexed), nothing with
probability ``2^-k`` — then the sketches diffuse by bitwise OR along edges.
Once stable, every node in a connected component holds the OR of its
component's sketches and estimates the count from the lowest zero bit.

The iterated OR is a *semi-lattice* function (Section 5's [16]/[23]
reference), which is what makes the algorithm 0-sensitive: any surviving
connected piece still computes the OR of whatever sketches it retains, so
the paper's "reasonably correct" guarantee holds under arbitrary
non-disconnecting faults, and component estimates stay within
``[½|V(G')|, 2|V(G)|]`` whp even under disconnection.

States are k-tuples of 0/1 — a finite alphabet of size 2^k, so this is a
genuine FSSGA (the OR rule reads neighbours only through their support).
"""

from __future__ import annotations

import itertools
import math
from typing import Optional, Union

import numpy as np

from repro.core.automaton import FSSGA, NeighborhoodView
from repro.network.graph import Network, Node
from repro.network.state import NetworkState

__all__ = [
    "sample_sketch",
    "or_rule",
    "build",
    "run_census",
    "build_averaged",
    "first_zero_index",
    "estimate",
    "estimate_paper",
    "estimate_averaged",
    "component_estimates",
    "CALIBRATION",
]

#: Flajolet–Martin magic constant φ ≈ 0.77351: E[2^R] ≈ φ·n for the
#: 0-indexed lowest zero bit R.  With our 1-indexed ℓ = R + 1 the unbiased
#: estimate is n ≈ 2^ℓ / (2φ) ≈ 0.65 · 2^ℓ.  The paper states the
#: equivalent "1.3 · 2^ℓ" with ℓ read 0-indexed.
CALIBRATION = 1.0 / (2 * 0.77351)


def sample_sketch(k: int, rng: np.random.Generator) -> tuple:
    """One node's initial sketch: bit ``i`` set with probability ``2^-i``
    (1-indexed, exclusive), nothing with the residual probability ``2^-k``."""
    u = rng.random()
    acc = 0.0
    for i in range(1, k + 1):
        acc += 2.0 ** (-i)
        if u < acc:
            return tuple(1 if j == i else 0 for j in range(1, k + 1))
    return (0,) * k


def or_rule(own: tuple, view: NeighborhoodView) -> tuple:
    """``v.m := v.m OR w.m`` over all neighbours at once (semi-lattice)."""
    out = list(own)
    for sketch in view.support():
        for j, bit in enumerate(sketch):
            if bit:
                out[j] = 1
    return tuple(out)


def build(
    net: Network,
    k: Optional[int] = None,
    rng: Union[int, np.random.Generator, None] = None,
) -> tuple[FSSGA, NetworkState]:
    """The census automaton and a probabilistically-initialized state.

    ``k`` defaults to ``⌈log2 n⌉ + 4`` (the paper requires k >= log2 n).
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if k is None:
        k = max(4, math.ceil(math.log2(max(net.num_nodes, 2)))) + 4
    alphabet = set(itertools.product((0, 1), repeat=k))
    automaton = FSSGA(alphabet, or_rule, name=f"census[k={k}]")
    init = NetworkState.from_function(net, lambda v: sample_sketch(k, gen))
    return automaton, init


def run_census(
    net: Network,
    k: Optional[int] = None,
    rng: Union[int, np.random.Generator, None] = None,
    **kwargs,
):
    """Diffuse the sketches to their fixed point through :func:`repro.run`
    and return the :class:`~repro.runtime.api.RunResult`.

    The OR rule reads neighbours through :meth:`NeighborhoodView.support`,
    which is not program-expressible, so ``engine="auto"`` selects the
    reference interpreter (the intended fallback).  Read estimates off
    ``final_state`` with :func:`component_estimates`.
    """
    from repro.runtime.api import run

    automaton, init = build(net, k, rng)
    return run(automaton, net, init, **kwargs)


def first_zero_index(sketch: tuple) -> int:
    """The 1-indexed position ℓ of the lowest zero bit (k+1 if none)."""
    for i, bit in enumerate(sketch, start=1):
        if not bit:
            return i
    return len(sketch) + 1


def estimate(sketch: tuple, calibration: float = CALIBRATION) -> float:
    """The calibrated count estimate ``calibration · 2^ℓ``."""
    return calibration * 2.0 ** first_zero_index(sketch)


def estimate_paper(sketch: tuple) -> float:
    """The paper's literal formula ``1.3 · 2^ℓ`` with ℓ read 0-indexed
    (i.e. ``1.3 · 2^(ℓ₁-1)`` for our 1-indexed ℓ₁); numerically equal to
    :func:`estimate` up to the rounding of 1/φ ≈ 1.293 to 1.3."""
    return 1.3 * 2.0 ** (first_zero_index(sketch) - 1)


def build_averaged(
    net: Network,
    copies: int,
    k: Optional[int] = None,
    rng: Union[int, np.random.Generator, None] = None,
) -> tuple[FSSGA, NetworkState]:
    """Stochastic averaging: each node holds ``copies`` independent
    sketches, OR-diffused componentwise.

    The Flajolet–Martin paper's own accuracy fix: a single sketch has
    σ ≈ 1.12 bits of log-estimate noise, so the SPAA paper's
    "within a factor 2 whp" needs averaging; with c copies the standard
    deviation of the averaged first-zero index shrinks like 1/√c.  States
    are c-tuples of k-bit tuples — still a finite alphabet, and the rule
    is still a semi-lattice, so 0-sensitivity is preserved.
    """
    if copies < 1:
        raise ValueError("need at least one sketch copy")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if k is None:
        k = max(4, math.ceil(math.log2(max(net.num_nodes, 2)))) + 4

    def rule_avg(own: tuple, view: NeighborhoodView) -> tuple:
        out = [list(s) for s in own]
        for group in view.support():
            for c, sketch in enumerate(group):
                for j, bit in enumerate(sketch):
                    if bit:
                        out[c][j] = 1
        return tuple(tuple(s) for s in out)

    class _Space:
        def __contains__(self, q: object) -> bool:
            return (
                isinstance(q, tuple)
                and len(q) == copies
                and all(
                    isinstance(s, tuple)
                    and len(s) == k
                    and all(b in (0, 1) for b in s)
                    for s in q
                )
            )

        def __len__(self) -> int:
            return 2 ** (k * copies)

    automaton = FSSGA(_Space(), rule_avg, name=f"census[k={k},c={copies}]")
    init = NetworkState.from_function(
        net, lambda v: tuple(sample_sketch(k, gen) for _ in range(copies))
    )
    return automaton, init


def estimate_averaged(
    sketches: tuple, calibration: float = CALIBRATION
) -> float:
    """The stochastic-averaging estimate ``calibration · 2^(mean ℓ)``."""
    mean_ell = sum(first_zero_index(s) for s in sketches) / len(sketches)
    return calibration * 2.0 ** mean_ell


def component_estimates(
    net: Network, state: NetworkState, calibration: float = CALIBRATION
) -> dict[Node, float]:
    """Each node's current estimate (after diffusion they agree within a
    component)."""
    return {v: estimate(state[v], calibration) for v in net}
