"""FSSGA 2-colouring / bipartiteness (paper, Section 4.1).

Q = {BLANK, RED, BLUE, FAILED}.  One node starts RED, the rest BLANK; the
cascade (verbatim from the paper) is::

    if    μ_FAILED >= 1                  then FAILED
    elif  μ_RED >= 1 and μ_BLUE >= 1     then FAILED
    elif  μ_RED >= 1                     then BLUE
    elif  μ_BLUE >= 1                    then RED
    else                                       BLANK

Two implementations are provided:

* :func:`rule` — the paper's cascade verbatim.  Note that it never consults
  the node's *own* state, so under the synchronous schedule the colouring
  re-derives from scratch each round and the network *oscillates* with
  period 2 instead of stabilizing (e.g. an odd cycle alternates all-RED /
  all-BLUE without ever detecting failure).  The tests document this
  behaviour; the paper's prose describes the algorithm only abstractly.
* :func:`sticky_rule` — a converging variant that uses the own-state
  dependence the FSSGA model explicitly grants ("the node reads its own
  state a priori, and this determines exactly which FSM function is
  used"): coloured nodes keep their colour and watch for conflicts.  On
  bipartite components it reaches a proper 2-colouring (a fixed point) in
  ≤ diameter+1 synchronous steps; on non-bipartite components FAILED
  appears and floods.  A network state is a fixed point iff it is a proper
  2-colouring, under both synchronous and fair asynchronous schedules.

The formal :class:`~repro.core.modthresh.ModThreshProgram` cascades are no
longer hand-written: :func:`programs` / :func:`sticky_programs` derive them
from the rules by the checked Lemma 3.9 compiler
(:func:`repro.core.compile.compile_rule` + cascade pruning), and
:func:`build` returns the *rule-based* automaton itself, declaring
``compile_hints`` so the runtime lowers it onto the vectorized engines —
the single-source-of-truth arrangement every algorithm gets from the
shared compiler IR (cross-checked against the rules in the tests).
"""

from __future__ import annotations

from repro.core.automaton import FSSGA, NeighborhoodView
from repro.core.compile import compile_rule
from repro.core.modthresh import ModThreshProgram
from repro.core.simplify import prune_cascade
from repro.network.graph import Network, Node
from repro.network.state import NetworkState

__all__ = [
    "BLANK",
    "RED",
    "BLUE",
    "FAILED",
    "ALPHABET",
    "rule",
    "sticky_rule",
    "programs",
    "sticky_programs",
    "build",
    "run_two_coloring",
    "succeeded",
    "failed",
    "coloring",
]

BLANK = "blank"
RED = "red"
BLUE = "blue"
FAILED = "failed"
ALPHABET = frozenset({BLANK, RED, BLUE, FAILED})

_OPPOSITE = {RED: BLUE, BLUE: RED}


def rule(own: str, view: NeighborhoodView) -> str:
    """The Section 4.1 cascade, verbatim (own state is never used)."""
    if view.at_least(FAILED, 1):
        return FAILED
    if view.at_least(RED, 1) and view.at_least(BLUE, 1):
        return FAILED
    if view.at_least(RED, 1):
        return BLUE
    if view.at_least(BLUE, 1):
        return RED
    return BLANK


def sticky_rule(own: str, view: NeighborhoodView) -> str:
    """Converging variant: coloured nodes keep their colour and detect
    conflicts; BLANK nodes colour themselves opposite to a coloured
    neighbour."""
    if own == FAILED or view.at_least(FAILED, 1):
        return FAILED
    if own in (RED, BLUE):
        # conflict: a neighbour shares my colour -> not bipartite.
        return FAILED if view.at_least(own, 1) else own
    # own == BLANK
    if view.at_least(RED, 1) and view.at_least(BLUE, 1):
        return FAILED
    if view.at_least(RED, 1):
        return BLUE
    if view.at_least(BLUE, 1):
        return RED
    return BLANK


def _compiled(rule_fn) -> dict[str, ModThreshProgram]:
    """Derive the formal per-own-state cascades from a rule (Lemma 3.9).

    Both rules only ask ``at_least(q, 1)`` questions, so a threshold bound
    of 1 suffices; the checked compiler would reject anything deeper.  The
    enumeration emits one clause per multiplicity-class combination;
    :func:`prune_cascade` removes the shadowed/default-equivalent ones
    (exactly, over the bounded verification domain)."""
    states = sorted(ALPHABET)
    return {
        q: prune_cascade(
            compile_rule(rule_fn, states, q, max_threshold=1), states
        )
        for q in states
    }


def programs() -> dict[str, ModThreshProgram]:
    """The paper's cascade as formal mod-thresh programs, compiled from
    :func:`rule` (one per own state; the rule ignores the own state, so all
    four agree semantically)."""
    return _compiled(rule)


def sticky_programs() -> dict[str, ModThreshProgram]:
    """The sticky variant's formal programs, compiled from
    :func:`sticky_rule` (f[q] genuinely differs by q)."""
    return _compiled(sticky_rule)


def build(
    net: Network, origin: Node, sticky: bool = True
) -> tuple[FSSGA, NetworkState]:
    """The 2-colouring automaton with ``origin`` initially RED.

    ``sticky=True`` (default) selects the converging variant; pass False
    for the paper-verbatim oscillating cascade.  The automaton is
    *rule-based* — no hand-written programs — and declares
    ``compile_hints``, so ``repro.run`` lowers it through the Lemma 3.9
    compiler and auto-selects the vectorized engine for it.
    """
    if origin not in net:
        raise KeyError(f"origin {origin!r} not in network")
    automaton = FSSGA(
        ALPHABET,
        sticky_rule if sticky else rule,
        name="two-coloring",
        compile_hints={"max_threshold": 1},
    )
    init = NetworkState.from_function(
        net, lambda v: RED if v == origin else BLANK
    )
    return automaton, init


def run_two_coloring(
    net: Network, origin: Node, sticky: bool = True, **kwargs
):
    """2-colour ``net`` through the :func:`repro.run` front door and return
    its :class:`~repro.runtime.api.RunResult` (fixed point; vectorized
    engine under ``engine="auto"``)."""
    from repro.runtime.api import run

    automaton, init = build(net, origin, sticky=sticky)
    return run(automaton, net, init, **kwargs)


def failed(state: NetworkState) -> bool:
    """True iff any node has detected non-bipartiteness."""
    return any(q == FAILED for q in state.values())


def succeeded(net: Network, state: NetworkState) -> bool:
    """True iff the current colours form a proper 2-colouring with no BLANK
    or FAILED nodes remaining."""
    for v in net:
        if state[v] not in (RED, BLUE):
            return False
        for u in net.neighbors(v):
            if state[u] == state[v]:
                return False
    return True


def coloring(state: NetworkState) -> dict[Node, str]:
    """The colour assignment (only meaningful after success)."""
    return dict(state.items())
