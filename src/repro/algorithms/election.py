"""Randomized leader election as a local-rule FSSGA (paper, Section 4.7,
Algorithm 4.4).

Every node starts identical (up to its private random bits).  The run
proceeds in phases, kept loosely synchronized by a mod-3 phase counter.
Within a phase the cluster machinery must evolve in *lockstep logical
rounds* — the paper: "We keep nodes synchronized in phases using a similar
abstraction to that given in Section 4.2" — so each node also carries a
mod-3 round clock plus (current, previous) copies of its intra-phase
state, exactly the α-synchronizer construction: a node acts only when no
same-phase neighbour's clock is behind, reading current state from
same-clock neighbours and previous state from neighbours one round ahead.
Without this, staggered phase starts skew the BFS distance labels and a
*single* cluster can manufacture spurious multiple-root evidence.

Per phase:

1. Each *remaining* node picks a label ∈ {0, 1} and roots a BFS cluster
   (mod-3 distance ``cdist``, propagated root label ``clabel``).
   Non-remaining nodes join the first cluster to reach them.
2. Nodes watch for evidence of multiple clusters: conflicting propagated
   labels, a root seeing a would-be predecessor, mismatches in the
   Dolev-style random recolouring each root streams down its cluster
   (lockstep makes in-cluster checks deterministic no-ops while
   cross-cluster checks fail with probability 1/2 per round), or two
   walker signals at once (agents from different clusters colliding).
3. Evidence raises ``NP_i`` (new phase, carrying the largest label known),
   which floods the graph; nodes increment their phase after being in NP.
   A remaining node with label 0 that sees ``NP_1`` is eliminated — so
   with ≥ 2 remaining nodes each is eliminated with probability ≥ 1/4 per
   phase (Claim 4.1) and Θ(log n) phases suffice whp.
4. A root whose neighbourhood is fully labelled releases a Milgram agent
   (the Section 4.5 traversal, embedded as a product component).  The
   agent visits the cluster and retracts; its return certifies ≥ n
   recolourings happened (Claim 4.2), so the root declares itself
   *leader*.  Premature leaders (possible on long paths, as the paper
   notes) are demoted by the next NP wave; at termination exactly one
   leader remains whp.

Engineering notes (the paper's pseudocode is informal; deviations are
spelled out here):

* Colour comparisons are gated by a two-stage validity flag so the
  propagation transient raises no false alarms.
* The embedded traversal elects extension targets with the Section 4.4
  coin protocol; eligible participants are non-remaining, already-claimed
  (``cdist`` set) nodes with no arm neighbour.
* After declaring leader, a root freezes, so the network reaches a true
  fixed point; the paper's applet instead runs on.

Randomness r = 8 (three private bits per activation: label, colour,
election coin).
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from typing import NamedTuple, Optional, Union

import numpy as np

from repro.core.automaton import NeighborhoodView, ProbabilisticFSSGA
from repro.core.modthresh import ModThreshProgram, at_least
from repro.network.graph import Network, Node
from repro.network.state import NetworkState

__all__ = [
    "InnerState",
    "ElectionState",
    "STAR",
    "build",
    "leaders",
    "remaining",
    "run_until_elected",
    "LocalElectionResult",
    "K_REMAIN0",
    "K_REMAIN1",
    "K_OUT",
    "coin_kernel_programs",
    "coin_kernel_init",
    "kernel_remaining_count",
    "kernel_unique_survivor",
    "KernelPhaseStats",
    "kernel_phase_statistics",
    "phase_statistics_job",
]

STAR = "*"

# traversal sub-fields (match repro.algorithms.traversal naming)
T_BLANK, T_ARM, T_HAND, T_VISITED = "blank", "arm", "hand", "visited"
S_IDLE, S_FLIP, S_WAIT, S_NOTAILS, S_ELECT = "idle", "flip", "wait", "notails", "elect"
S_HEADS, S_TAILS, S_ELIM = "heads", "tails", "elim"

_T_STATUSES = (T_BLANK, T_ARM, T_HAND, T_VISITED)
_T_SUBS = (S_IDLE, S_FLIP, S_WAIT, S_NOTAILS, S_ELECT, S_HEADS, S_TAILS, S_ELIM)


class InnerState(NamedTuple):
    """The per-phase, round-synchronized portion of a node's state."""

    cdist: object  # STAR or 0/1/2 — mod-3 BFS distance from my cluster root
    clabel: int  # my cluster root's label (meaningful iff cdist != STAR)
    colour: int  # 0/1 current recolouring value
    colour_prev: int
    colour_valid: int  # 0 = unset, 1 = fresh, 2 = mature
    tstat: str  # traversal status
    tsub: str  # traversal election substate


class ElectionState(NamedTuple):
    """One node's composite state."""

    phase: int  # 0, 1, 2 (mod 3)
    remain: bool
    label: int  # 0 / 1, this phase's random label (meaningful iff remain)
    np: int  # -1 = none, else the NP level (0 or 1)
    leader: bool
    clock: int  # 0, 1, 2 — intra-phase round counter (α-synchronizer)
    cur: InnerState
    prev: InnerState


def _valid_inner(s: object) -> bool:
    return (
        isinstance(s, InnerState)
        and (s.cdist == STAR or s.cdist in (0, 1, 2))
        and s.clabel in (0, 1)
        and s.colour in (0, 1)
        and s.colour_prev in (0, 1)
        and s.colour_valid in (0, 1, 2)
        and s.tstat in _T_STATUSES
        and s.tsub in _T_SUBS
    )


class _ElectionSpace:
    """Lazy membership test for the composite state space."""

    def __contains__(self, q: object) -> bool:
        if not isinstance(q, ElectionState):
            return False
        return (
            q.phase in (0, 1, 2)
            and isinstance(q.remain, bool)
            and q.label in (0, 1)
            and q.np in (-1, 0, 1)
            and isinstance(q.leader, bool)
            and q.clock in (0, 1, 2)
            and _valid_inner(q.cur)
            and _valid_inner(q.prev)
        )

    def __len__(self) -> int:
        inner = 4 * 2 * 2 * 2 * 3 * 4 * 8
        return 3 * 2 * 2 * 3 * 2 * 3 * inner * inner


def _fresh_inner(remain: bool, label: int, colour: int) -> InnerState:
    return InnerState(
        cdist=0 if remain else STAR,
        clabel=label,
        colour=colour,
        colour_prev=colour,
        colour_valid=2 if remain else 0,
        tstat=T_BLANK,
        tsub=S_IDLE,
    )


def _fresh_phase_state(
    phase: int, remain: bool, label: int, colour: int
) -> ElectionState:
    inner = _fresh_inner(remain, label, colour)
    return ElectionState(
        phase=phase,
        remain=remain,
        label=label,
        np=-1,
        leader=False,
        clock=0,
        cur=inner,
        prev=inner,
    )


def rule(own: ElectionState, view: NeighborhoodView, draw: int) -> ElectionState:
    """One synchronous activation of the election automaton."""
    label_bit = draw & 1
    colour_bit = (draw >> 1) & 1
    coin = S_HEADS if ((draw >> 2) & 1) == 0 else S_TAILS
    p = own.phase
    prev_p = (p - 1) % 3
    next_p = (p + 1) % 3

    # 1. wait for phase stragglers (do nothing at all while any neighbour
    #    is a whole phase behind — this also pins our round clock at its
    #    current value so the α invariant survives phase boundaries).
    if view.any_matching(lambda q: q.phase == prev_p):
        return own

    # 2. advance the phase (after being in NP, or seeing an advanced
    #    neighbour).
    if own.np != -1 or view.any_matching(lambda q: q.phase == next_p):
        new_remain = own.remain and not (own.np == 1 and own.label == 0)
        return _fresh_phase_state(next_p, new_remain, label_bit, colour_bit)

    # 3. NP propagation (immediate, un-clocked: the broadcast wave).
    if view.any_matching(lambda q: q.phase == p and q.np != -1):
        return _enter_np(own, view, p)

    # 4. the α-synchronizer gate: act only when no same-phase neighbour's
    #    clock is behind ours.
    behind = (own.clock - 1) % 3
    if view.any_matching(lambda q: q.phase == p and q.clock == behind):
        return own

    # effective (round-aligned) neighbour inner states: same clock -> cur,
    # one ahead -> prev.
    ahead = (own.clock + 1) % 3
    eff: list[InnerState] = []
    for q, count in view._counts.items():
        if q.phase != p:
            continue
        if q.clock == own.clock:
            eff.extend([q.cur] * count)
        elif q.clock == ahead:
            eff.extend([q.prev] * count)
        # q.clock == behind was excluded above

    # 5. synchronized evidence check.
    if _np_evidence(own, eff):
        return _enter_np(own, view, p)

    # 6. synchronized inner step.  A declared leader keeps participating
    # in rounds (freezing its clock would deadlock neighbours waiting on
    # it) but freezes its colour stream, so the cluster state converges.
    new_inner = _inner_step(own, eff, colour_bit, coin)
    new_leader = (
        own.remain
        and own.cur.cdist == 0
        and own.cur.tstat == T_HAND
        and new_inner.tstat == T_VISITED
    )
    return own._replace(
        clock=(own.clock + 1) % 3,
        prev=own.cur,
        cur=new_inner,
        leader=own.leader or new_leader,
    )


def _enter_np(own: ElectionState, view: NeighborhoodView, p: int) -> ElectionState:
    """Enter NP with the largest label known (the paper's NP_1/NP_0 rule:
    'if any neighbour is NP_1, or label = 1, or any neighbours' label is
    1, enter NP_1, else NP_0')."""
    level1 = (
        view.any_matching(lambda q: q.phase == p and q.np == 1)
        or (own.remain and own.label == 1)
        or (own.cur.cdist != STAR and own.cur.clabel == 1)
        or view.any_matching(
            lambda q: q.phase == p and q.cur.cdist != STAR and q.cur.clabel == 1
        )
    )
    return own._replace(np=1 if level1 else 0, leader=False)


def _np_evidence(own: ElectionState, eff: list[InnerState]) -> bool:
    """Round-synchronized local evidence that more than one root exists."""
    # (a) conflicting propagated labels in my neighbourhood
    saw0 = any(s.cdist != STAR and s.clabel == 0 for s in eff)
    saw1 = any(s.cdist != STAR and s.clabel == 1 for s in eff)
    if saw0 and saw1:
        return True
    if own.cur.cdist != STAR:
        mine = own.cur.clabel
        if (mine == 0 and saw1) or (mine == 1 and saw0):
            return True
    # (b) a root with a would-be predecessor
    if own.remain and own.cur.cdist == 0:
        if any(s.cdist == 2 for s in eff):
            return True
    # (c) recolouring mismatches (both sides mature)
    me = own.cur
    if me.cdist != STAR and me.colour_valid == 2:
        pred_d = (me.cdist - 1) % 3
        for s in eff:
            if s.cdist == pred_d and s.colour_valid == 2 and s.colour_prev != me.colour:
                return True
            if s.cdist == me.cdist and s.colour_valid == 2 and s.colour != me.colour:
                return True
    # (d) two walker signals at once: agents from different clusters collide
    hands = sum(1 for s in eff if s.tstat == T_HAND)
    if hands >= 2:
        return True
    return False


def _inner_step(
    own: ElectionState,
    eff: list[InnerState],
    colour_bit: int,
    coin: str,
) -> InnerState:
    me = own.cur
    is_root = own.remain and me.cdist == 0

    # --- cluster growth: adopt the first cluster to reach me
    if me.cdist == STAR:
        for x in (0, 1, 2):
            hits = [s for s in eff if s.cdist == x]
            if hits:
                return me._replace(
                    cdist=(x + 1) % 3, clabel=hits[0].clabel
                )
        return me

    new = me

    # --- colour propagation (Dolev recolouring, lockstep); a declared
    # leader stops drawing fresh colours so its cluster converges.
    if is_root:
        next_colour = me.colour if own.leader else colour_bit
        new = new._replace(colour_prev=new.colour, colour=next_colour)
    else:
        pred_d = (me.cdist - 1) % 3
        pred_colours = [
            s.colour for s in eff if s.cdist == pred_d and s.colour_valid >= 1
        ]
        if pred_colours:
            if me.colour_valid == 0:
                new = new._replace(colour=pred_colours[0], colour_valid=1)
            else:
                new = new._replace(
                    colour_prev=new.colour,
                    colour=pred_colours[0],
                    colour_valid=2,
                )

    # --- embedded Milgram traversal
    new = _traversal_step(own, new, eff, coin, is_root)
    return new


def _traversal_step(
    own: ElectionState,
    me: InnerState,
    eff: list[InnerState],
    coin: str,
    is_root: bool,
) -> InnerState:
    st, sub = me.tstat, me.tsub

    def any_hand(subs) -> bool:
        return any(s.tstat == T_HAND and s.tsub in subs for s in eff)

    arm_near = any(s.tstat == T_ARM for s in eff)
    armhand = sum(1 for s in eff if s.tstat in (T_ARM, T_HAND))

    if st == T_VISITED:
        return me

    if st == T_BLANK:
        # the root releases the agent once its neighbourhood is labelled
        if is_root and not any(s.cdist == STAR for s in eff):
            if armhand == 0:
                return me._replace(tstat=T_HAND, tsub=S_IDLE)
        if any_hand((S_ELECT,)):
            if sub == S_TAILS:
                return me._replace(tstat=T_HAND, tsub=S_IDLE)
            return me._replace(tsub=S_IDLE)
        if any_hand((S_FLIP,)):
            if sub == S_HEADS:
                return me._replace(tsub=S_ELIM)
            if sub == S_TAILS:
                return me._replace(tsub=coin)
            eligible = (
                sub == S_IDLE
                and not own.remain
                and me.cdist != STAR
                and not arm_near
            )
            if eligible:
                return me._replace(tsub=coin)
            return me
        if any_hand((S_NOTAILS,)):
            if sub == S_HEADS:
                return me._replace(tsub=coin)
            return me
        return me

    if st == T_HAND:
        if sub == S_IDLE:
            return me._replace(tsub=S_FLIP)
        if sub in (S_FLIP, S_NOTAILS):
            return me._replace(tsub=S_WAIT)
        if sub == S_WAIT:
            participants = [
                s
                for s in eff
                if s.tstat == T_BLANK and s.tsub in (S_HEADS, S_TAILS, S_ELIM)
            ]
            tails = [s for s in participants if s.tsub == S_TAILS]
            if not participants:
                return me._replace(tstat=T_VISITED, tsub=S_IDLE)
            if not tails:
                return me._replace(tsub=S_NOTAILS)
            if len(tails) == 1:
                return me._replace(tsub=S_ELECT)
            return me._replace(tsub=S_FLIP)
        if sub == S_ELECT:
            return me._replace(tstat=T_ARM, tsub=S_IDLE)
        return me

    # st == T_ARM: retraction
    if is_root:
        if armhand == 0:
            return me._replace(tstat=T_HAND, tsub=S_IDLE)
    else:
        if armhand <= 1:
            return me._replace(tstat=T_HAND, tsub=S_IDLE)
    return me


def build(
    net: Network,
    rng: Union[int, np.random.Generator, None] = None,
) -> tuple[ProbabilisticFSSGA, NetworkState]:
    """The election automaton and a (privately randomized) initial state.

    Every node starts remaining at phase 0 with a fresh random label and
    colour — the only per-node asymmetry is private randomness, as leader
    election demands.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    automaton = ProbabilisticFSSGA(
        _ElectionSpace(), 8, rule, name="leader-election"
    )
    init = NetworkState.from_function(
        net,
        lambda v: _fresh_phase_state(
            0, True, int(gen.integers(2)), int(gen.integers(2))
        ),
    )
    return automaton, init


def leaders(state: NetworkState) -> list[Node]:
    """Nodes currently claiming leadership."""
    return [v for v, q in state.items() if q.leader]


def remaining(state: NetworkState) -> list[Node]:
    """Nodes still remaining (candidates)."""
    return [v for v, q in state.items() if q.remain]


class LocalElectionResult(NamedTuple):
    leader: Node
    steps: int
    phases_observed: int


def run_until_elected(
    net: Network,
    rng: Union[int, np.random.Generator, None] = None,
    max_steps: Optional[int] = None,
) -> LocalElectionResult:
    """Run the local-rule election until a stable unique leader emerges.

    Termination condition: exactly one remaining node, it claims leadership
    and the network has reached a fixed point.
    """
    if net.num_nodes < 2 or not net.is_connected():
        raise ValueError("election needs a connected network with >= 2 nodes")
    from repro.runtime.api import run as _run

    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    automaton, init = build(net, gen)
    n = net.num_nodes
    if max_steps is None:
        max_steps = max(6000, 1200 * n * max(1, math.ceil(math.log2(n))))
    threshold = 2 * n + 20
    tracker = {"phase_changes": 0, "last": None, "quiet": 0, "state": init}

    def settled(state: NetworkState) -> bool:
        tracker["state"] = state
        counts = tuple(sorted(q.phase for q in state.values()))
        if counts != tracker["last"]:
            tracker["phase_changes"] += 1
            tracker["last"] = counts
        lead = leaders(state)
        rem = remaining(state)
        if len(lead) == 1 and len(rem) == 1 and lead == rem:
            # clocks keep cycling, so look for sustained stability of the
            # leadership configuration rather than a syntactic fixed point.
            tracker["quiet"] += 1
            return tracker["quiet"] >= threshold
        tracker["quiet"] = 0
        return False

    try:
        res = _run(
            automaton,
            net,
            init,
            engine="reference",
            until=settled,
            max_steps=max_steps,
            rng=gen,
        )
    except RuntimeError:
        state = tracker["state"]
        raise RuntimeError(
            f"election not finished after {max_steps} steps "
            f"(remaining={len(remaining(state))}, leaders={leaders(state)})"
        ) from None
    return LocalElectionResult(
        leaders(res.final_state)[0], res.steps, tracker["phase_changes"]
    )


# ----------------------------------------------------------------------
# Claim 4.1 coin-elimination kernel (mod-thresh, engine-friendly)
# ----------------------------------------------------------------------
#
# The full Algorithm 4.4 automaton above is rule-based over a huge
# composite alphabet, which locks replica statistics into the per-node
# reference interpreter.  The *probabilistic core* of its analysis —
# Claim 4.1's per-phase coin elimination — is mod-thresh expressible over
# three states, so distributions over runs (phases to a unique survivor,
# per-phase elimination rates) can be batch-simulated on the vectorized
# engines.  One synchronous step is one phase: every remaining node holds
# this phase's label (r0 or r1); a label-0 remainer that detects a label-1
# remainer among its neighbours is eliminated (the NP₁ evidence reaching
# it), and every surviving remainer draws next phase's label from its
# private coin (randomness r = 2).
#
# Detection here is neighbourhood-local.  On a complete graph every
# remaining pair is adjacent, so detection is global exactly as in
# Claim 4.1's broadcast argument and the kernel terminates with a unique
# survivor in Θ(log n) expected phases (each label-0 remainer is
# eliminated w.p. ≥ 1/4 whenever ≥ 2 remain).  On sparser graphs the
# remaining set can become independent and stall — the full automaton's
# NP broadcast is what relays the evidence — so run the kernel on K_n for
# phase statistics, or read it as the one-hop detection model.

K_REMAIN0 = "r0"  # remaining, this phase's label = 0
K_REMAIN1 = "r1"  # remaining, this phase's label = 1
K_OUT = "out"  # eliminated


def coin_kernel_programs() -> dict:
    """The Claim 4.1 phase kernel as probabilistic mod-thresh programs.

    Keys are ``(own_state, draw)`` with r = 2; feed to any engine with
    ``randomness=2``.
    """
    elim = (at_least(K_REMAIN1, 1), K_OUT)
    return {
        (K_REMAIN0, 0): ModThreshProgram(clauses=(elim,), default=K_REMAIN0),
        (K_REMAIN0, 1): ModThreshProgram(clauses=(elim,), default=K_REMAIN1),
        (K_REMAIN1, 0): ModThreshProgram(clauses=(), default=K_REMAIN0),
        (K_REMAIN1, 1): ModThreshProgram(clauses=(), default=K_REMAIN1),
        (K_OUT, 0): ModThreshProgram(clauses=(), default=K_OUT),
        (K_OUT, 1): ModThreshProgram(clauses=(), default=K_OUT),
    }


def coin_kernel_init(net: Network) -> NetworkState:
    """Everyone remaining with label 0: the first step is a pure label
    draw (no r1 exists yet, so nothing can be eliminated), and phases
    proper begin at step 2 — mirroring the fresh-phase reset of the full
    automaton."""
    return NetworkState.uniform(net, K_REMAIN0)


def kernel_remaining_count(counts: Mapping) -> int:
    """Remaining-candidate count from a ``{state: multiplicity}`` dict."""
    return counts.get(K_REMAIN0, 0) + counts.get(K_REMAIN1, 0)


def kernel_unique_survivor(state: Mapping) -> bool:
    """Termination predicate: at most one remaining candidate.

    A top-level function (not a closure) so batched kernel runs — and the
    campaign jobs that shard them across worker processes — stay
    picklable.
    """
    return sum(1 for q in state.values() if q != K_OUT) <= 1


class KernelPhaseStats(NamedTuple):
    """Replica statistics of the coin-elimination kernel."""

    replicas: int
    rounds: np.ndarray  # per-replica phases until a unique survivor
    mean_rounds: float
    survivor_counts: list  # remaining candidates at termination (all 1s)


def kernel_phase_statistics(
    net: Network,
    replicas: int = 64,
    rng: Union[int, np.random.Generator, None] = None,
    max_steps: int = 10_000,
    metrics=None,
):
    """Phases-to-unique-survivor over ``replicas`` independent kernel runs.

    All replicas evolve in one :class:`~repro.runtime.batched.
    BatchedSynchronousEngine` computation; replica ``i`` is bitwise
    reproducible from ``np.random.default_rng(seed).spawn(replicas)[i]``.
    Use a complete graph for Claim 4.1 statistics (see the kernel notes
    above); expected phases there are Θ(log n).

    This is the in-process API (it takes a live network and returns a
    :class:`KernelPhaseStats`); :func:`phase_statistics_job` is the same
    computation in campaign-job form.
    """
    stats, _ = _phase_statistics(net, replicas, rng, max_steps, metrics)
    return stats


def _phase_statistics(net, replicas, rng, max_steps, metrics):
    """Shared core: returns ``(KernelPhaseStats, RunResult)``."""
    from repro.runtime.api import run as _run

    res = _run(
        coin_kernel_programs(),
        net,
        coin_kernel_init(net),
        replicas=replicas,
        randomness=2,
        rng=rng,
        until=kernel_unique_survivor,
        max_steps=max_steps,
        metrics=metrics,
    )
    stats = KernelPhaseStats(
        replicas=replicas,
        rounds=res.replica_rounds,
        mean_rounds=float(np.mean(res.replica_rounds)),
        survivor_counts=[
            sum(1 for q in st.values() if q != K_OUT)
            for st in res.replica_states
        ],
    )
    return stats, res


def phase_statistics_job(
    rng=None,
    metrics=None,
    *,
    family: str = "repro.network.generators.complete_graph",
    n: int = 32,
    replicas: int = 64,
    max_steps: int = 10_000,
) -> dict:
    """Campaign-job form of :func:`kernel_phase_statistics`.

    A pure top-level function under the ``repro.campaigns`` convention
    (``fn(rng, metrics, **params) -> dict``): the network is built from a
    dotted generator name + ``n`` so the job spec holds only JSON values,
    and the result is plain data plus the run's
    :func:`~repro.runtime.telemetry.manifest_content_hash` for
    replay-level provenance.
    """
    from repro.campaigns.spec import resolve_dotted
    from repro.runtime.telemetry import manifest_content_hash

    net = resolve_dotted(family)(n)
    stats, res = _phase_statistics(net, replicas, rng, max_steps, metrics)
    return {
        "family": family,
        "n": n,
        "replicas": stats.replicas,
        "rounds": [int(r) for r in stats.rounds],
        "mean_rounds": stats.mean_rounds,
        "survivor_counts": [int(s) for s in stats.survivor_counts],
        "log2_n": math.log2(n),
        "manifest_hash": manifest_content_hash(res.manifest),
    }
