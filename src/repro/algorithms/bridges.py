"""Random-walk bridge finding (paper, Section 2.1).

Fix an arbitrary orientation on every edge and give each edge an integer
counter starting at 0.  A single agent takes a random walk; traversing an
edge with its orientation increments the counter, against it decrements.
A bridge's counter provably stays in {-1, 0, 1} forever, while every
non-bridge's counter eventually exceeds ±1 — in expected O(mn) steps
(Claim 2.1).  Edges remember whether their counter ever hit ±2; after
``O(c·m·n·log n)`` steps all non-bridges are identified with probability
``1 - n^(1-c)``.

Sensitivity: the only critical node is the agent's position, so the
algorithm is 1-sensitive (2-sensitive in a fully asynchronous adaptation,
as the paper notes for the "in transit" moments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.agents.agent import RandomWalkAgent
from repro.network.graph import Edge, Network, Node, canonical_edge

__all__ = ["BridgeFinder", "recommended_steps"]


def recommended_steps(n: int, m: int, confidence: float = 2.0) -> int:
    """The paper's ``O(c·m·n·log n)`` walk budget for success probability
    ``1 - n^(1-c)``."""
    return max(1, int(confidence * m * n * math.log(max(n, 2))))


@dataclass
class _EdgeRecord:
    counter: int = 0
    exceeded: bool = False
    first_exceed_step: Optional[int] = None


class BridgeFinder:
    """The Section 2.1 agent algorithm with oriented edge counters.

    Parameters
    ----------
    net:
        The network (may suffer faults while the walk runs; dead edges keep
        their records but stop being updated).
    start:
        The agent's initial node.
    rng:
        Seed or generator for the walk.
    """

    def __init__(
        self,
        net: Network,
        start: Node,
        rng: Union[int, np.random.Generator, None] = None,
    ) -> None:
        self.net = net
        self.agent = RandomWalkAgent(net, start, rng=rng)
        # orientation: the canonical tuple (u, v) means "u -> v increments".
        self._records: dict[Edge, _EdgeRecord] = {
            e: _EdgeRecord() for e in net.edges()
        }
        self.steps = 0

    # ------------------------------------------------------------------
    def _on_traverse(self, src: Node, dst: Node) -> None:
        e = canonical_edge(src, dst)
        rec = self._records.get(e)
        if rec is None:  # edge added?  cannot happen under decreasing faults
            rec = self._records[e] = _EdgeRecord()
        if (src, dst) == e:
            rec.counter += 1
        else:
            rec.counter -= 1
        if abs(rec.counter) >= 2 and not rec.exceeded:
            rec.exceeded = True
            rec.first_exceed_step = self.steps

    def step(self) -> bool:
        """One random-walk step; returns False if the agent is lost/stuck."""
        mv = self.agent.random_step()
        self.steps += 1
        if mv is None:
            return self.agent.alive
        self._on_traverse(*mv)
        return True

    def run(self, steps: int) -> None:
        for _ in range(steps):
            if not self.step():
                break

    def run_until_all_nonbridges_found(
        self, true_bridges: set[Edge], max_steps: int = 50_000_000
    ) -> int:
        """Walk until every non-bridge has exceeded ±1 (test harness hook);
        returns the number of steps used."""
        remaining = {
            e for e in self._records if e not in true_bridges
        }
        while remaining:
            if self.steps >= max_steps:
                raise RuntimeError("walk budget exhausted before all non-bridges found")
            if not self.step():
                raise RuntimeError("agent lost before all non-bridges found")
            remaining = {e for e in remaining if not self._records[e].exceeded}
        return self.steps

    # ------------------------------------------------------------------
    def counter(self, u: Node, v: Node) -> int:
        return self._records[canonical_edge(u, v)].counter

    def exceeded_edges(self) -> set[Edge]:
        """Edges identified as non-bridges so far."""
        return {e for e, r in self._records.items() if r.exceeded}

    def presumed_bridges(self) -> set[Edge]:
        """Edges whose counter never left {-1, 0, 1}.

        After a sufficient walk this equals the true bridge set whp; early
        in the walk it may still contain undetected non-bridges.
        """
        return {e for e, r in self._records.items() if not r.exceeded}

    def first_detection_times(self) -> dict[Edge, int]:
        """Edge → step at which it was first seen to exceed ±1."""
        return {
            e: r.first_exceed_step
            for e, r in self._records.items()
            if r.first_exceed_step is not None
        }
