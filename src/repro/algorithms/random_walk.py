"""Emergent random walk in the synchronous FSSGA model (paper, Section 4.4,
Algorithm 4.2).

A node cannot pick uniformly among arbitrarily many neighbours, so the
walker node runs coin-flip elimination rounds: its neighbours repeatedly
flip; on each ``flip!`` round heads are eliminated and survivors re-flip;
when exactly one neighbour shows tails the walker hands over to it
(``onetails``); if nobody shows tails the round is re-run without
elimination (``notails``).  When the walker sits at a node of degree d the
expected number of rounds per move is Θ(log d), and the emergent process is
a uniform random walk: by symmetry, each neighbour is equally likely to be
the last survivor.

Walker states Q_w = {flip!, waiting-for-flips, notails, onetails}; full
alphabet Q = Q_w ∪ {blank, heads, tails, eliminated} (Equation 6).  The
automaton is probabilistic with r = 2 (one fair coin per activation).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.automaton import NeighborhoodView, ProbabilisticFSSGA
from repro.network.graph import Network, Node
from repro.network.state import NetworkState
from repro.runtime.simulator import SynchronousSimulator

__all__ = [
    "FLIP",
    "WAITING_FOR_FLIPS",
    "NOTAILS",
    "ONETAILS",
    "BLANK",
    "HEADS",
    "TAILS",
    "ELIMINATED",
    "WALKER_STATES",
    "ALPHABET",
    "rule",
    "build",
    "walker_position",
    "WalkObserver",
    "run_walk",
]

FLIP = "flip!"
WAITING_FOR_FLIPS = "waiting-for-flips"
NOTAILS = "notails"
ONETAILS = "onetails"
BLANK = "blank"
HEADS = "heads"
TAILS = "tails"
ELIMINATED = "eliminated"

WALKER_STATES = frozenset({FLIP, WAITING_FOR_FLIPS, NOTAILS, ONETAILS})
ALPHABET = WALKER_STATES | {BLANK, HEADS, TAILS, ELIMINATED}


def rule(own: str, view: NeighborhoodView, draw: int) -> str:
    """Algorithm 4.2, one synchronous activation (draw 0 = heads,
    1 = tails)."""
    coin = HEADS if draw == 0 else TAILS

    # "if any neighbour is in a walker state q_w ∈ Q_w" — with a single
    # walker in the network at most one of these can be present.
    if view.any(FLIP):
        if own == HEADS:
            return ELIMINATED
        if own in (BLANK, TAILS):
            return coin
        return own  # eliminated stays; walker-states cannot be adjacent
    if view.any(NOTAILS):
        if own == HEADS:
            return coin
        return own
    if view.any(ONETAILS):
        if own == TAILS:
            return FLIP  # receive the walker
        if own in (BLANK, HEADS, ELIMINATED):
            return BLANK
        return own
    if view.any(WAITING_FOR_FLIPS):
        return own  # coins hold still while the walker reads them

    # no walker among the neighbours: walker-state transitions.
    if own == WAITING_FOR_FLIPS:
        if view.none(TAILS):
            return NOTAILS
        if view.exactly(TAILS, 1):
            return ONETAILS  # send the walker
        return FLIP
    if own in (NOTAILS, FLIP):
        return WAITING_FOR_FLIPS  # neighbours flip
    if own == ONETAILS:
        return BLANK  # clear the walker's remains
    return own


def build(
    net: Network,
    start: Node,
    rng: Union[int, np.random.Generator, None] = None,
) -> tuple[ProbabilisticFSSGA, NetworkState]:
    """The random-walk automaton with the walker initially at ``start``."""
    if start not in net:
        raise KeyError(f"start node {start!r} not in network")
    # the rule reads neighbours only through traced any/none/exactly
    # queries (thresh atoms ≤ 2), so it is declared compilable: the
    # Lemma 3.9 lowering gives it the vectorized fast path for free
    automaton = ProbabilisticFSSGA(
        ALPHABET, 2, rule, name="random-walk", compile_hints=True
    )
    init = NetworkState.from_function(
        net, lambda v: FLIP if v == start else BLANK
    )
    return automaton, init


def walker_position(state: NetworkState) -> Optional[Node]:
    """The unique node in a walker state (None if — erroneously — absent)."""
    holders = state.nodes_in(WALKER_STATES)
    if len(holders) > 1:
        raise RuntimeError(f"multiple walkers: {holders!r}")
    return holders[0] if holders else None


class WalkObserver:
    """Records the emergent walk: positions visited and rounds per move."""

    def __init__(self, start: Node) -> None:
        self.positions: list[Node] = [start]
        self.steps_per_move: list[int] = []
        self._steps_since_move = 0

    def observe(self, state: NetworkState) -> None:
        pos = walker_position(state)
        self._steps_since_move += 1
        if pos is not None and pos != self.positions[-1]:
            self.positions.append(pos)
            self.steps_per_move.append(self._steps_since_move)
            self._steps_since_move = 0

    @property
    def moves(self) -> int:
        return len(self.positions) - 1


def run_walk(
    net: Network,
    start: Node,
    moves: int,
    rng: Union[int, np.random.Generator, None] = None,
    max_steps: int = 2_000_000,
) -> WalkObserver:
    """Run the synchronous automaton until the walker has moved ``moves``
    times; returns the observer with positions and per-move round counts."""
    automaton, init = build(net, start, rng)
    sim = SynchronousSimulator(net, automaton, init, rng=rng)
    obs = WalkObserver(start)
    steps = 0
    while obs.moves < moves:
        if steps >= max_steps:
            raise RuntimeError(f"walker made only {obs.moves}/{moves} moves in {max_steps} steps")
        sim.step()
        obs.observe(sim.state)
        steps += 1
    return obs
