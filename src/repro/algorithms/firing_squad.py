"""Firing squad synchronization on path graphs (paper, Section 5.2).

The paper poses the firing squad problem for general FSSGA networks as
*open*, noting that on path graphs "there is a long history of solutions,
some symmetric [22]".  As the executable companion of that discussion we
implement the classical Minsky–McCarthy divide-and-conquer solution on a
path of n cells: the general emits a fast signal (speed 1) and a slow
signal (speed 1/3); the fast signal reflects off the far wall and meets
the slow signal in the middle of the segment, where new generals are born
(one at the exact midpoint when the interior length D is odd — the
signals *cross* between cells — or two adjacent middle cells when D is
even — the signals meet *on* a cell); the recursion halves the segment
until every cell is a general, at which point all cells fire
simultaneously, at time ≈ 3n.

Simultaneity argument (verified empirically in the tests for n ≤ 200):
both children of a segment have equal interior lengths ((D-1)/2 for odd
D, (D-2)/2 for even D) and are created at the same instant, so all
segments at each recursion level share one length and one start time; the
final level turns the last quiescent cells into generals everywhere at
once, and a general fires exactly when both neighbours are generals/walls
and it carries no signals.

Substrate note (documented deviation): this is a *directed* path cellular
automaton — each cell reads its left and right neighbours separately.
The direction-free locally-symmetric variant is exactly the [22]
(Szwerinski) construction the paper cites; the open problem (general
graphs) remains open.

Signal conventions (derived so the meet lands exactly mid-segment):

* a general is born holding its outgoing ``fast`` and ``slow`` signals;
  neighbours pick them up the next step and the general's copies clear;
* fast signals advance one cell per step and reflect off walls
  (generals/boundaries) in place, reversing direction;
* slow signals sit on a cell for phases 0, 1, 2 and hop at phase 2;
* a quiescent cell holding a slow signal that *receives* the reflected
  fast signal is a same-cell meet (even D): it and its right neighbour
  become generals serving left/right respectively;
* a quiescent cell receiving the fast signal while its left neighbour's
  slow signal is at phase 2 is a crossing meet (odd D): it alone becomes
  a general serving both sides.

(The mirrored rules apply to leftward-growing segments.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["FiringSquadLine", "run_firing_squad", "space_time_diagram"]

Q = "quiescent"
G = "general"
FIRED = "fired"

L = "L"
R = "R"


@dataclass(frozen=True)
class Cell:
    role: str = Q
    fast: frozenset = frozenset()  # subset of {L, R}
    # slow signals: mapping direction -> phase 0..2, stored as a frozenset
    # of (dir, phase) pairs with at most one entry per direction.
    slow: frozenset = frozenset()

    def slow_phase(self, direction: str) -> Optional[int]:
        for d, ph in self.slow:
            if d == direction:
                return ph
        return None

    def quiet_general(self) -> bool:
        return self.role == G and not self.fast and not self.slow


_BOUNDARY = Cell(role=G)


def _wallish(c: Cell) -> bool:
    return c.role in (G, FIRED)


class FiringSquadLine:
    """A path of n cells with the general initially at cell 0."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("need at least one cell")
        self.n = n
        self.time = 0
        self.cells = [Cell() for _ in range(n)]
        self.cells[0] = self._birth(emit_left=False, emit_right=n > 1)

    @staticmethod
    def _birth(emit_left: bool, emit_right: bool) -> Cell:
        fast = set()
        slow = set()
        if emit_left:
            fast.add(L)
            slow.add((L, 0))
        if emit_right:
            fast.add(R)
            slow.add((R, 0))
        return Cell(role=G, fast=frozenset(fast), slow=frozenset(slow))

    # ------------------------------------------------------------------
    def _at(self, i: int) -> Cell:
        if 0 <= i < self.n:
            return self.cells[i]
        return _BOUNDARY

    @property
    def all_fired(self) -> bool:
        return all(c.role == FIRED for c in self.cells)

    def fired_count(self) -> int:
        return sum(1 for c in self.cells if c.role == FIRED)

    def step(self) -> None:
        old = self.cells
        self.cells = [
            self._next(self._at(i - 1), old[i], self._at(i + 1), i)
            for i in range(self.n)
        ]
        self.time += 1

    # ------------------------------------------------------------------
    def _next(self, left: Cell, me: Cell, right: Cell, i: int) -> Cell:
        if me.role == FIRED:
            return me

        if me.role == G:
            # fire when the whole line has synchronized locally
            if _wallish(left) and _wallish(right) and me.quiet_general():
                return Cell(role=FIRED)
            # outgoing signals: fast clears (neighbours picked it up),
            # slow advances its phase and hops/dies at phase 2.
            slow = set()
            for d, ph in me.slow:
                if ph < 2:
                    slow.add((d, ph + 1))
                # at phase 2 the neighbour accepts it next step (or it
                # dies at a wall); either way it leaves this cell.
            return Cell(role=G, fast=frozenset(), slow=frozenset(slow))

        # ---------- quiescent cell: births first -------------------------
        # same-cell meet (even D): I hold a slow signal and the reflected
        # fast signal reaches me.
        if me.slow_phase(R) is not None and L in me.fast:
            return self._birth(emit_left=not _wallish(left), emit_right=False)
        if me.slow_phase(L) is not None and R in me.fast:
            return self._birth(emit_left=False, emit_right=not _wallish(right))
        # partner of a same-cell meet: my neighbour is the meet cell; I
        # become the general serving the other side.
        if left.role == Q and left.slow_phase(R) is not None and L in left.fast:
            return self._birth(emit_left=False, emit_right=not _wallish(right))
        if right.role == Q and right.slow_phase(L) is not None and R in right.fast:
            return self._birth(emit_left=not _wallish(left), emit_right=False)
        # crossing meet (odd D): the fast signal arrives while my
        # neighbour's slow signal (travelling toward me) is at phase 2.
        if L in me.fast and left.slow_phase(R) == 2:
            return self._birth(
                emit_left=not _wallish(left), emit_right=not _wallish(right)
            )
        if R in me.fast and right.slow_phase(L) == 2:
            return self._birth(
                emit_left=not _wallish(left), emit_right=not _wallish(right)
            )

        # ---------- signal propagation ----------------------------------
        fast = set()
        # accept fast from the left (travelling right), unless the sender
        # is a meet cell absorbing it — senders absorb only leftward fast,
        # so a rightward fast always arrives.
        if R in left.fast:
            fast.add(R)
        if L in right.fast:
            # suppress if the sender is itself a same-cell meet (its slow
            # and fast die into the new general), or if I am handing my
            # slow into it (crossing: both signals die into the general).
            sender_meets = right.role == Q and right.slow_phase(R) is not None
            crossing = me.slow_phase(R) == 2
            if not sender_meets and not crossing:
                fast.add(L)
        if R in left.fast and left.role == Q and left.slow_phase(L) is not None:
            # mirrored same-cell suppression for leftward segments
            fast.discard(R)
        if R in me.fast and me.slow_phase(L) == 2:
            pass  # mirrored crossing: handled below by not accepting
        # mirrored crossing suppression: my leftward slow dies into the
        # general being born on my left.
        if R in left.fast and me.slow_phase(L) == 2:
            fast.discard(R)

        # reflection off walls
        if R in me.fast and _wallish(right):
            fast.add(L)
        if L in me.fast and _wallish(left):
            fast.add(R)

        # slow signals
        slow = set()
        for d, ph in me.slow:
            if ph < 2:
                slow.add((d, ph + 1))
            # phase 2: hop (next cell accepts below) or die at wall /
            # crossing — nothing kept here either way.
        if left.slow_phase(R) == 2 and L not in me.fast:
            slow.add((R, 0))
        if right.slow_phase(L) == 2 and R not in me.fast:
            slow.add((L, 0))

        return Cell(role=Q, fast=frozenset(fast), slow=frozenset(slow))

    # ------------------------------------------------------------------
    def render(self) -> str:
        out = []
        for c in self.cells:
            if c.role == FIRED:
                out.append("F")
            elif c.role == G:
                out.append("G")
            elif c.fast and c.slow:
                out.append("*")
            elif c.fast:
                if c.fast == frozenset({R}):
                    out.append(">")
                elif c.fast == frozenset({L}):
                    out.append("<")
                else:
                    out.append("X")
            elif c.slow:
                out.append("s")
            else:
                out.append(".")
        return "".join(out)


def run_firing_squad(n: int, max_steps: Optional[int] = None) -> tuple[int, bool]:
    """Run to completion; returns ``(firing time, simultaneous?)``.

    ``simultaneous`` is True iff no cell fired before the step at which
    every cell fired.
    """
    line = FiringSquadLine(n)
    if max_steps is None:
        max_steps = 8 * n + 60
    first_partial: Optional[int] = None
    while not line.all_fired:
        if line.time >= max_steps:
            raise RuntimeError(
                f"squad not synchronized after {max_steps} steps "
                f"(state: {line.render()})"
            )
        line.step()
        k = line.fired_count()
        if 0 < k < line.n and first_partial is None:
            first_partial = line.time
    return line.time, first_partial is None


def space_time_diagram(n: int, max_steps: Optional[int] = None) -> list[str]:
    """The full execution as one rendered line per step (for debugging
    and for the docs)."""
    line = FiringSquadLine(n)
    if max_steps is None:
        max_steps = 8 * n + 60
    frames = [line.render()]
    while not line.all_fired and line.time < max_steps:
        line.step()
        frames.append(line.render())
    return frames
