"""Decentralized shortest paths / clustering (paper, Section 2.2).

Fix a target set T.  Every node stores one integer label ℓ(v); nodes in T
pin their label to 0 and every other node repeatedly sets

    ℓ(v) := 1 + min over neighbours u of ℓ(u),

capped at n in case a component contains no target.  A node at distance d
stabilizes at d within d rounds, and the algorithm is 0-sensitive: after
any sequence of non-disconnecting faults the labels re-converge to the
distances in the surviving graph.

The label alphabet {0, 1, …, cap} ∪ {cap} is finite *for a fixed cap*, and
the update reads neighbours symmetrically (the min over a multiset), so for
fixed n this is expressible as an FSSGA; the natural implementation below
keeps labels as integers with the cap explicit.

``route_packet`` demonstrates the paper's sensor-network application:
greedily following any minimum-label neighbour traces a shortest path to
the nearest data sink.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

from repro.core.automaton import FSSGA
from repro.core.modthresh import ModThreshProgram, at_least
from repro.network.graph import Network, Node
from repro.network.state import NetworkState

__all__ = ["programs", "build", "run_labels", "labels", "route_packet", "stabilized"]


def programs(cap: int) -> dict[tuple, ModThreshProgram]:
    """The distance-labelling update as explicit mod-thresh cascades.

    Targets pin their label to 0; every other node takes 1 + the least
    label present among its neighbours (target flag irrelevant), capped.
    One clause per candidate label — the min over a multiset, written as a
    thresh-atom cascade.
    """
    out: dict[tuple, ModThreshProgram] = {}
    non_target_clauses = tuple(
        (
            at_least((False, d), 1) | at_least((True, d), 1),
            (False, min(d + 1, cap)),
        )
        for d in range(cap)
    )
    for d in range(cap + 1):
        out[(True, d)] = ModThreshProgram(
            clauses=(), default=(True, 0), name=f"shortest-paths[target,{d}]"
        )
        out[(False, d)] = ModThreshProgram(
            clauses=non_target_clauses,
            default=(False, cap),
            name=f"shortest-paths[{d}]",
        )
    return out


def build(
    net: Network,
    targets: Iterable[Node],
    cap: Optional[int] = None,
) -> tuple[FSSGA, NetworkState]:
    """The distance-labelling automaton and its initial state.

    States are pairs ``(is_target, label)`` with labels in ``{0..cap}``;
    non-target nodes start at the cap (the "practically, cap each label at
    n" device from the paper).  Built from the explicit :func:`programs`
    cascades, so ``repro.run`` auto-selects the vectorized engine.
    """
    target_set = set(targets)
    missing = target_set - set(net.nodes())
    if missing:
        raise KeyError(f"targets not in network: {sorted(map(repr, missing))}")
    if cap is None:
        cap = net.num_nodes
    if cap < 1:
        raise ValueError("cap must be >= 1")

    automaton = FSSGA.from_programs(programs(cap), name="shortest-paths")
    init = NetworkState.from_function(
        net, lambda v: (True, 0) if v in target_set else (False, cap)
    )
    return automaton, init


def run_labels(
    net: Network,
    targets: Iterable[Node],
    cap: Optional[int] = None,
    **kwargs,
):
    """Converge the distance labels through :func:`repro.run` and return
    the :class:`~repro.runtime.api.RunResult` (read the labels off
    ``final_state`` with :func:`labels`)."""
    from repro.runtime.api import run

    automaton, init = build(net, targets, cap)
    return run(automaton, net, init, **kwargs)


def labels(state: NetworkState) -> dict[Node, int]:
    """Extract the integer labels from the composite states."""
    return {v: q[1] for v, q in state.items()}


def stabilized(net: Network, state: NetworkState, targets: Iterable[Node], cap: int) -> bool:
    """True iff every label equals the true (capped) distance to T."""
    target_set = [t for t in targets if t in net]
    dist = net.bfs_distances(target_set) if target_set else {}
    lab = labels(state)
    for v in net:
        want = min(dist.get(v, cap), cap)
        if lab[v] != want:
            return False
    return True


def route_packet(
    net: Network,
    state: NetworkState,
    start: Node,
    rng: Union[int, np.random.Generator, None] = None,
    max_hops: Optional[int] = None,
) -> list[Node]:
    """Greedy routing to the nearest sink: repeatedly hop to any neighbour
    of minimum label.  Returns the node path (ending at a label-0 node).

    With stabilized labels this traces a shortest path — the paper's
    sensor-network data-sink application.  Raises if the packet cannot make
    progress (labels not stabilized, or no sink reachable).
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    lab = labels(state)
    if max_hops is None:
        max_hops = net.num_nodes + 1
    path = [start]
    current = start
    for _ in range(max_hops):
        if lab[current] == 0:
            return path
        nbrs = sorted(net.neighbors(current), key=repr)
        if not nbrs:
            raise RuntimeError(f"packet stranded at isolated node {current!r}")
        best = min(lab[u] for u in nbrs)
        if best >= lab[current]:
            raise RuntimeError(
                f"no downhill neighbour at {current!r}: labels not stabilized"
            )
        choices = [u for u in nbrs if lab[u] == best]
        current = choices[int(gen.integers(len(choices)))]
        path.append(current)
    raise RuntimeError("routing exceeded the hop budget")
