"""The paper's algorithm suite.

Section 1/2 exemplars:

* :mod:`repro.algorithms.census` — Flajolet–Martin approximate counting
  (0-sensitive).
* :mod:`repro.algorithms.bridges` — random-walk bridge finding
  (1-sensitive).
* :mod:`repro.algorithms.shortest_paths` — decentralized distance labels
  (0-sensitive).
* :mod:`repro.algorithms.beta_synchronizer` — the tree-based Θ(n)-sensitive
  baseline the paper contrasts against.

Section 4 FSSGA algorithms:

* :mod:`repro.algorithms.two_coloring` — bipartiteness (4.1).
* :mod:`repro.algorithms.synchronizer` — the α-synchronizer program
  transformer (4.2).
* :mod:`repro.algorithms.bfs` — mod-3 breadth-first search (4.3).
* :mod:`repro.algorithms.random_walk` — emergent random walk (4.4).
* :mod:`repro.algorithms.traversal` — Milgram arm/hand traversal (4.5).
* :mod:`repro.algorithms.greedy_traversal` — the greedy tourist (4.6).
* :mod:`repro.algorithms.election` — randomized leader election (4.7).
* :mod:`repro.algorithms.election_reference` — phase-level reference model
  mirroring the Claims 4.1/4.2 analysis.
* :mod:`repro.algorithms.firing_squad` — the Section 5.2 open problem, on
  path graphs.
"""

from repro.algorithms import (
    beta_synchronizer,
    bfs,
    bridges,
    census,
    election,
    election_reference,
    firing_squad,
    greedy_traversal,
    random_walk,
    shortest_paths,
    synchronizer,
    traversal,
    two_coloring,
)

__all__ = [
    "beta_synchronizer",
    "bfs",
    "bridges",
    "census",
    "election",
    "election_reference",
    "firing_squad",
    "greedy_traversal",
    "random_walk",
    "shortest_paths",
    "synchronizer",
    "traversal",
    "two_coloring",
]
