"""The tree-based β synchronizer — the paper's fragile baseline.

Awerbuch's β synchronizer runs on a rooted spanning tree: the root
broadcasts a pulse down the tree; safety acknowledgements convect back up;
when the root has heard from every subtree it releases the next pulse.
The paper's Section 1/2 point: "a spanning tree-based algorithm (like the
β synchronizer) fails if one of the tree edges dies, since then not all
nodes can communicate along the remainder of the tree", giving sensitivity
Θ(n) — a spanning tree may have n/2 internal nodes and the failure of any
one (or of any tree edge) disconnects the tree.

This implementation models the pulse/ack cycle directly on the tree edges
and is used by the sensitivity experiments (E14) as the high-sensitivity
contrast to the FSSGA α synchronizer.
"""

from __future__ import annotations

from typing import Optional

from repro.network.graph import Network, Node, canonical_edge
from repro.network.properties import bfs_tree

__all__ = ["BetaSynchronizer"]


class BetaSynchronizer:
    """Pulse generation over a BFS spanning tree of the initial network.

    The tree is fixed at construction (as the real β synchronizer's setup
    phase would).  Each :meth:`pulse` performs a broadcast/ack cycle; it
    fails — permanently — as soon as any tree node or tree edge has died,
    because the remaining tree no longer spans the survivors.
    """

    def __init__(self, net: Network, root: Optional[Node] = None) -> None:
        if not net.is_connected():
            raise ValueError("the β synchronizer needs an initially connected network")
        self.net = net
        self.root = root if root is not None else next(iter(net))
        self._parent = bfs_tree(net, self.root)
        self._tree_nodes = set(net.nodes())
        self._tree_edges = {canonical_edge(c, p) for c, p in self._parent.items()}
        self.pulses_completed = 0
        self.broken = False

    # ------------------------------------------------------------------
    def critical_nodes(self) -> set[Node]:
        """χ(σ): the internal (non-leaf) tree nodes plus the root.

        The failure of any of these — or any tree-edge failure — stalls the
        pulse cycle; the sensitivity is Θ(n).
        """
        internal = set(self._parent.values())
        internal.add(self.root)
        return internal

    def tree_intact(self) -> bool:
        """True iff every tree node and tree edge is still alive."""
        if any(v not in self.net for v in self._tree_nodes):
            return False
        return all(self.net.has_edge(u, v) for u, v in self._tree_edges)

    def pulse(self) -> bool:
        """One broadcast/ack cycle; returns True on success.

        Walks the pulse down the tree and the acks back up.  If any tree
        component is missing, the cycle cannot complete; the synchronizer is
        then broken for good (no self-repair — that is the point of the
        baseline).
        """
        if self.broken or not self.tree_intact():
            self.broken = True
            return False
        # broadcast + convergecast both succeed iff the tree is intact,
        # which we already verified; count the round.
        self.pulses_completed += 1
        return True

    def run(self, pulses: int) -> int:
        """Attempt ``pulses`` cycles; returns how many succeeded."""
        done = 0
        for _ in range(pulses):
            if not self.pulse():
                break
            done += 1
        return done
