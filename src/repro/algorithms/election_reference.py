"""Phase-level reference model of the leader election (paper, Section 4.7).

This module mirrors the *analysis* of Algorithm 4.4 — Claims 4.1/4.2 and
the O(n log n) total-time argument — at the granularity of phases, so the
asymptotic experiments (E12) can run at sizes the full local-rule automaton
(:mod:`repro.algorithms.election`) cannot reach.

Per phase, each remaining node picks a label uniformly from {0, 1}; node u
is eliminated iff its label is 0 and it detects some other remaining node
with label 1 (the NP₁ broadcast reaches everyone within the O(n)-step
phase, per Claim 4.2's inconsistency-detection argument).  Detection is
modelled faithfully to Claim 4.1: u is eliminated when the *first* cluster
to reach it — the remaining node v minimizing ``t(v) + dist(v, u)``, here
with simultaneous phase starts, simply the nearest remaining node, ties
broken adversarially toward non-detection — carries label 1, or when any
neighbouring cluster conflict raises NP₁.  We expose both the optimistic
("any label-1 remainer exists") and the nearest-cluster variant; both
satisfy the ≥ 1/4 bound of Claim 4.1.

Simulated time accounting follows the paper: a non-final phase costs O(n)
synchronous steps (cluster growth + recolouring detection + NP broadcast ≤
c·n) and the final verification phase costs the Milgram traversal's
O(n log n).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.network.graph import Network, Node

__all__ = ["ElectionOutcome", "run_election", "phase_elimination_probability"]


@dataclass
class ElectionOutcome:
    """Result of a reference election run."""

    leader: Node
    phases: int
    simulated_time: int
    remaining_per_phase: list[int] = field(default_factory=list)


def _eliminate_nearest(
    net: Network,
    remaining: set[Node],
    labels: dict[Node, int],
) -> set[Node]:
    """Claim 4.1's detection model: u (label 0) is eliminated iff some
    *nearest* other remaining node (minimizing ``dist(v, u)`` — the first
    cluster to reach u) carries label 1."""
    out = set()
    for u in remaining:
        if labels[u] == 1:
            out.add(u)
            continue
        dist = net.bfs_distances([u])
        best_d = None
        best_labels: set[int] = set()
        for v in remaining:
            if v == u or v not in dist:
                continue
            if best_d is None or dist[v] < best_d:
                best_d = dist[v]
                best_labels = {labels[v]}
            elif dist[v] == best_d:
                best_labels.add(labels[v])
        # the claim picks one minimizing v; detection by any nearest
        # label-1 cluster suffices.
        if best_d is not None and 1 in best_labels:
            continue  # u is eliminated -> not added to survivors
        out.add(u)
    return out


def _eliminate_optimistic(
    net: Network,
    remaining: set[Node],
    labels: dict[Node, int],
) -> set[Node]:
    """Optimistic detection: the NP₁ broadcast reaches every node, so any
    label-0 remainer is eliminated whenever some label-1 remainer exists."""
    if any(labels[v] == 1 for v in remaining):
        return {v for v in remaining if labels[v] == 1}
    return set(remaining)


def run_election(
    net: Network,
    rng: Union[int, np.random.Generator, None] = None,
    detection: str = "optimistic",
    max_phases: int = 10_000,
) -> ElectionOutcome:
    """Run the phase-level election to completion.

    ``detection`` is ``"optimistic"`` or ``"nearest"`` (see module
    docstring).  Returns the leader, the phase count (paper: Θ(log n) whp)
    and the simulated synchronous time (paper: O(n log n) whp).
    """
    if not net.is_connected():
        raise ValueError("leader election requires a connected network")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    eliminate = {
        "optimistic": _eliminate_optimistic,
        "nearest": _eliminate_nearest,
    }[detection]

    n = net.num_nodes
    remaining = set(net.nodes())
    phases = 0
    time = 0
    history: list[int] = []
    while len(remaining) > 1:
        if phases >= max_phases:
            raise RuntimeError(f"election did not converge in {max_phases} phases")
        history.append(len(remaining))
        labels = {v: int(gen.integers(2)) for v in remaining}
        survivors = eliminate(net, remaining, labels)
        assert survivors, "at least one node always remains"
        remaining = survivors
        phases += 1
        time += 2 * n  # cluster growth + detection + NP broadcast: O(n)
    history.append(1)
    # final phase: Dolev recolouring while a Milgram agent times ~n rounds.
    time += 2 * n * max(1, math.ceil(math.log2(max(n, 2))))
    leader = next(iter(remaining))
    return ElectionOutcome(
        leader=leader,
        phases=phases,
        simulated_time=time,
        remaining_per_phase=history,
    )


def phase_elimination_probability(
    net: Network,
    remaining_count: int,
    trials: int = 2000,
    rng: Union[int, np.random.Generator, None] = None,
    detection: str = "nearest",
) -> float:
    """Empirical per-phase elimination probability of a fixed remaining
    node, for Claim 4.1 (paper bound: >= 1/4 whenever >= 2 nodes remain).

    Uses the first ``remaining_count`` nodes of ``net`` as the remaining
    set and measures how often node 0 survives a phase.
    """
    if remaining_count < 2:
        raise ValueError("Claim 4.1 concerns phases with >= 2 remaining nodes")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    eliminate = {
        "optimistic": _eliminate_optimistic,
        "nearest": _eliminate_nearest,
    }[detection]
    nodes = net.nodes()[:remaining_count]
    u = nodes[0]
    remaining = set(nodes)
    eliminated = 0
    for _ in range(trials):
        labels = {v: int(gen.integers(2)) for v in remaining}
        survivors = eliminate(net, remaining, labels)
        if u not in survivors:
            eliminated += 1
    return eliminated / trials
