"""Single-agent-on-a-graph substrate (paper, Sections 2.1, 4.5, 4.6).

An *agent* inhabits one node at a time and may move along edges.  This
subpackage provides the walk machinery used by the bridge-finding algorithm
(random walks with oriented edge counters), the greedy tourist, and the
Claim 2.1 lifted-graph construction used in the paper's hitting-time proof.
"""

from repro.agents.agent import Agent, RandomWalkAgent
from repro.agents.analysis import (
    exact_hitting_times,
    mixing_time_bound,
    spectral_gap,
    stationary_distribution,
    transition_matrix,
)
from repro.agents.walks import (
    cover_time,
    empirical_hitting_time,
    walk_until,
)
from repro.agents.lifted_graph import build_lifted_graph, EXCEEDED

__all__ = [
    "Agent",
    "RandomWalkAgent",
    "cover_time",
    "empirical_hitting_time",
    "walk_until",
    "build_lifted_graph",
    "EXCEEDED",
    "exact_hitting_times",
    "mixing_time_bound",
    "spectral_gap",
    "stationary_distribution",
    "transition_matrix",
]
