"""The Claim 2.1 lifted-graph construction.

To bound the time for a non-bridge edge's counter to exceed ±1, the paper
builds a (3n+1)-node graph: three copies ``v^-1, v^0, v^1`` of each node —
copy ``r`` meaning "the walk is at v and the counter equals r" — plus a
special ``EXCEEDED`` node for counter value ±2.  Edges within each layer
mirror the original graph minus the tracked edge; the tracked edge
``(v1, v2)`` becomes the four "spiral" edges

    (v1^-1, v2^0), (v1^0, v2^1), (v1^1, EXCEEDED), (EXCEEDED, v2^-1).

A random walk on the lifted graph corresponds exactly to the original
process (walk + counter), so the hitting time to EXCEEDED bounds the
detection time.  :func:`build_lifted_graph` constructs this object, and the
tests verify the stated node/edge counts and the process correspondence.
"""

from __future__ import annotations

from repro.network.graph import Network, Node

__all__ = ["EXCEEDED", "build_lifted_graph", "lifted_node"]

#: The distinguished absorbing-ish node representing counter value ±2.
EXCEEDED = "EXCEEDED"


def lifted_node(v: Node, counter: int) -> tuple:
    """The lifted copy ``v^counter`` for counter in {-1, 0, 1}."""
    if counter not in (-1, 0, 1):
        raise ValueError("layer counter must be -1, 0 or 1")
    return (v, counter)


def build_lifted_graph(net: Network, edge: tuple[Node, Node]) -> Network:
    """Build the Claim 2.1 lifted graph for the oriented ``edge = (v1, v2)``.

    The result has ``3n + 1`` nodes and ``3m + 1`` edges: ``3(m-1)`` layer
    copies of the untracked edges plus the four spiral edges (which count as
    ``3 + 1`` relative to the three removed copies of the tracked edge).
    """
    v1, v2 = edge
    if not net.has_edge(v1, v2):
        raise ValueError(f"edge ({v1!r}, {v2!r}) not in network")
    lifted = Network()
    for v in net:
        for r in (-1, 0, 1):
            lifted.add_node(lifted_node(v, r))
    lifted.add_node(EXCEEDED)
    # layer copies of every edge except the tracked one
    for u, w in net.edges():
        if {u, w} == {v1, v2}:
            continue
        for r in (-1, 0, 1):
            lifted.add_edge(lifted_node(u, r), lifted_node(w, r))
    # the spiral: traversing (v1 -> v2) increments the counter, and
    # (v2 -> v1) decrements it; ±2 lands on EXCEEDED.
    lifted.add_edge(lifted_node(v1, -1), lifted_node(v2, 0))
    lifted.add_edge(lifted_node(v1, 0), lifted_node(v2, 1))
    lifted.add_edge(lifted_node(v1, 1), EXCEEDED)
    lifted.add_edge(EXCEEDED, lifted_node(v2, -1))
    return lifted
