"""Agents: entities inhabiting one node of a network at a time.

The paper (Section 2.1): "An agent is an entity that inhabits one node of
the network at a time.  An agent at v can move to w in one step if and only
if v and w are adjacent."  Agent algorithms typically have sensitivity
Θ(1): the only critical node is the agent's position.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.network.graph import Network, Node

__all__ = ["Agent", "RandomWalkAgent"]


class Agent:
    """A movable token on a network.

    Tracks its position and the number of steps taken.  Movement is only
    allowed along live edges; if the current node dies, the agent is lost
    (position becomes ``None``) — this is the critical failure of a
    1-sensitive agent algorithm.
    """

    def __init__(self, net: Network, start: Node) -> None:
        if start not in net:
            raise KeyError(f"start node {start!r} not in network")
        self.net = net
        self.position: Optional[Node] = start
        self.steps_taken = 0
        self.visited: set[Node] = {start}

    @property
    def alive(self) -> bool:
        """False once the agent's node has been deleted."""
        if self.position is None or self.position not in self.net:
            self.position = None
            return False
        return True

    def move_to(self, target: Node) -> None:
        """Step to an adjacent node."""
        if not self.alive:
            raise RuntimeError("agent has been lost to a node fault")
        if not self.net.has_edge(self.position, target):
            raise ValueError(
                f"cannot move from {self.position!r} to non-adjacent {target!r}"
            )
        self.position = target
        self.steps_taken += 1
        self.visited.add(target)

    def neighbors(self) -> list[Node]:
        """Live neighbours of the current position (stable order)."""
        if not self.alive:
            return []
        return sorted(self.net.neighbors(self.position), key=repr)


class RandomWalkAgent(Agent):
    """An agent taking uniformly random steps.

    At each step the next position is drawn uniformly from the current
    neighbours (the Section 2.1 walk).  A stuck agent (isolated node) stays
    put and the step still counts — matching the convention that the walk's
    clock keeps ticking.
    """

    def __init__(
        self,
        net: Network,
        start: Node,
        rng: Union[int, np.random.Generator, None] = None,
    ) -> None:
        super().__init__(net, start)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    def random_step(self) -> Optional[tuple[Node, Node]]:
        """Take one random step; returns the (from, to) pair or ``None`` if
        the agent is stuck or lost."""
        if not self.alive:
            return None
        nbrs = self.neighbors()
        if not nbrs:
            self.steps_taken += 1
            return None
        src = self.position
        dst = nbrs[int(self.rng.integers(len(nbrs)))]
        self.move_to(dst)
        return (src, dst)

    def walk(
        self,
        steps: int,
        on_step: Optional[Callable[[Node, Node], None]] = None,
    ) -> None:
        """Take ``steps`` random steps, invoking ``on_step(src, dst)`` after
        each actual move."""
        for _ in range(steps):
            mv = self.random_step()
            if mv is not None and on_step is not None:
                on_step(*mv)
