"""Spectral analysis of random walks on networks.

Numerical companions to the Section 2.1 / 4.4 walk arguments: the
transition matrix of the simple random walk, its stationary distribution
(∝ degree), the spectral gap, and mixing/hitting quantities — computed
with numpy/scipy so the emergent FSSGA walk (Algorithm 4.2) can be
cross-validated against exact linear-algebra ground truth.

Everything here is *analysis* of the substrate, not part of the FSSGA
model itself.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.network.graph import Network, Node

__all__ = [
    "transition_matrix",
    "stationary_distribution",
    "spectral_gap",
    "mixing_time_bound",
    "exact_hitting_times",
    "occupancy_distribution",
]


def transition_matrix(net: Network) -> tuple[np.ndarray, list[Node]]:
    """The row-stochastic simple-random-walk matrix P and node order.

    Requires minimum degree >= 1 (isolated nodes have no walk step).
    """
    adj, order = net.to_csr()
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    if (degrees == 0).any():
        raise ValueError("transition matrix undefined with isolated nodes")
    inv_deg = sparse.diags(1.0 / degrees)
    return np.asarray((inv_deg @ adj).todense(), dtype=float), order


def stationary_distribution(net: Network) -> dict[Node, float]:
    """π(v) = deg(v) / 2m — the reversible walk's stationary law."""
    two_m = 2.0 * net.num_edges
    if two_m == 0:
        raise ValueError("stationary distribution undefined without edges")
    return {v: net.degree(v) / two_m for v in net}


def spectral_gap(net: Network) -> float:
    """1 - λ₂ where λ₂ is the second-largest eigenvalue modulus of P.

    Zero gap signals disconnection or bipartite periodicity.
    """
    p, _ = transition_matrix(net)
    eigvals = np.linalg.eigvals(p)
    mods = np.sort(np.abs(eigvals))[::-1]
    # the largest is 1 (stochastic); the gap uses the runner-up modulus.
    return float(1.0 - mods[1]) if len(mods) > 1 else 1.0


def mixing_time_bound(net: Network, epsilon: float = 0.25) -> float:
    """The standard reversible-chain bound
    ``t_mix(ε) <= (1/gap) · ln(1 / (ε · π_min))``.

    Infinite (numpy inf) when the gap vanishes (disconnected or exactly
    bipartite networks, where the lazy walk would be needed).
    """
    gap = spectral_gap(net)
    if gap <= 1e-12:
        return float("inf")
    pi_min = min(stationary_distribution(net).values())
    return float(np.log(1.0 / (epsilon * pi_min)) / gap)


def exact_hitting_times(net: Network, target: Node) -> dict[Node, float]:
    """Expected steps to reach ``target`` from every node, by solving the
    linear system ``h(v) = 1 + mean_{u ~ v} h(u)``, ``h(target) = 0``."""
    if target not in net:
        raise KeyError(f"target {target!r} not in network")
    p, order = transition_matrix(net)
    index = {v: i for i, v in enumerate(order)}
    t = index[target]
    n = len(order)
    keep = [i for i in range(n) if i != t]
    a = np.eye(n - 1) - p[np.ix_(keep, keep)]
    b = np.ones(n - 1)
    h = np.linalg.solve(a, b)
    out = {target: 0.0}
    for pos, i in enumerate(keep):
        out[order[i]] = float(h[pos])
    return out


def occupancy_distribution(positions: list[Node]) -> dict[Node, float]:
    """Empirical occupancy of a recorded walk (for comparisons with π)."""
    from collections import Counter

    counts = Counter(positions)
    total = len(positions)
    return {v: c / total for v, c in counts.items()}
