"""Random-walk statistics: hitting times, cover times, stopping rules.

Used by the Claim 2.1 experiments: the expected number of steps for a
non-bridge's counter to exceed ±1 is O(mn), established in the paper by a
hitting-time argument on the lifted graph (see
:mod:`repro.agents.lifted_graph`).
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from repro.agents.agent import RandomWalkAgent
from repro.network.graph import Network, Node

__all__ = ["walk_until", "empirical_hitting_time", "cover_time", "theoretical_hitting_bound"]


def walk_until(
    agent: RandomWalkAgent,
    stop: Callable[[RandomWalkAgent], bool],
    max_steps: int = 10_000_000,
) -> int:
    """Walk until ``stop(agent)`` holds; returns the number of steps taken.

    Raises :class:`RuntimeError` if the budget is exhausted — a walk on a
    connected graph hits any target in finite expected time, so a generous
    budget catches only genuine bugs or disconnection.
    """
    steps = 0
    while not stop(agent):
        if steps >= max_steps:
            raise RuntimeError(f"walk did not meet the stop condition in {max_steps} steps")
        agent.random_step()
        steps += 1
    return steps


def empirical_hitting_time(
    net: Network,
    source: Node,
    target: Node,
    trials: int = 20,
    rng: Union[int, np.random.Generator, None] = None,
    max_steps: int = 10_000_000,
) -> float:
    """Mean number of random-walk steps from ``source`` to hit ``target``."""
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    total = 0
    for _ in range(trials):
        agent = RandomWalkAgent(net, source, rng=gen)
        total += walk_until(agent, lambda a: a.position == target, max_steps)
    return total / trials


def cover_time(
    net: Network,
    start: Node,
    rng: Union[int, np.random.Generator, None] = None,
    max_steps: int = 10_000_000,
) -> int:
    """Steps for one random walk to visit every node of the component."""
    agent = RandomWalkAgent(net, start, rng=rng)
    n = len(net.component_of(start))
    return walk_until(agent, lambda a: len(a.visited) >= n, max_steps)


def theoretical_hitting_bound(n: int, m: int) -> int:
    """The undirected-graph hitting-time bound the paper cites
    ([Motwani-Raghavan, p.137]): at most 2·m'·n' steps between any pair in a
    connected graph with n' nodes and m' edges — instantiated for the lifted
    graph of Claim 2.1 this is ``2(3m+1)(3n) = O(mn)``."""
    return 2 * (3 * m + 1) * (3 * n)
