"""repro — Finite-State Symmetric Graph Automata (FSSGA).

A full reproduction of David Pritchard and Santosh Vempala, *Symmetric
Network Computation*, SPAA 2006: the three equivalent formulations of
symmetric multi-input finite-state (FSM) functions and their constructive
conversions (Theorem 3.7), the FSSGA distributed-computing model, the
paper's algorithm suite (2-colouring, α-synchronizer, BFS, random walk,
Milgram and greedy traversals, randomized leader election), the
k-sensitivity fault-tolerance framework, and the isotonic-web-automaton
equivalence.

Quickstart::

    from repro import run
    from repro.network import generators
    from repro.algorithms import two_coloring

    net = generators.cycle_graph(8)
    automaton, init = two_coloring.build(net, origin=0)
    res = run(automaton, net, init)          # engine="auto", until="stable"
    print(res.engine, res.steps, res.final_state.counts())
"""

from repro.campaigns import (
    ArtifactStore,
    CampaignSpec,
    run_campaign,
    write_summary,
)
from repro.core import (
    FSSGA,
    ProbabilisticFSSGA,
    NeighborhoodView,
    SequentialProgram,
    ParallelProgram,
    ModThreshProgram,
    Multiset,
)
from repro.network import (
    AutomorphismGroup,
    Network,
    NetworkState,
    SymmetryError,
    detect_symmetry,
)
from repro.runtime import (
    SynchronousSimulator,
    AsynchronousSimulator,
    ChurnPlan,
    FaultPlan,
    TopologyEvent,
    QuotientSynchronousEngine,
    MetricsObserver,
    MetricsRegistry,
    ReplayMismatchError,
    RunManifest,
    RunResult,
    StepObserver,
    TraceObserver,
    replay,
    run,
)

__version__ = "1.0.0"

__all__ = [
    "FSSGA",
    "ProbabilisticFSSGA",
    "NeighborhoodView",
    "SequentialProgram",
    "ParallelProgram",
    "ModThreshProgram",
    "Multiset",
    "Network",
    "NetworkState",
    "AutomorphismGroup",
    "SymmetryError",
    "detect_symmetry",
    "QuotientSynchronousEngine",
    "SynchronousSimulator",
    "AsynchronousSimulator",
    "FaultPlan",
    "ChurnPlan",
    "TopologyEvent",
    "run",
    "RunResult",
    "StepObserver",
    "TraceObserver",
    "MetricsObserver",
    "MetricsRegistry",
    "RunManifest",
    "ReplayMismatchError",
    "replay",
    "CampaignSpec",
    "ArtifactStore",
    "run_campaign",
    "write_summary",
    "__version__",
]
