"""The gossip-aggregation service workload.

One campaign-convention job (``(rng, metrics, **params) -> dict``)
implementing the separable-function gossip of Mosk-Aoyama & Shah
("Computing separable functions via gossip", PODC'06 — see PAPERS.md):
to estimate :math:`\\sum_i x_i`, every node draws ``k`` exponential
samples :math:`W_i^\\ell \\sim \\mathrm{Exp}(x_i)` and the network runs
synchronous *minimum diffusion* — each round every node replaces each of
its ``k`` values with the minimum over its closed neighbourhood.  Minima
spread like BFS, so after diameter-many rounds every node holds
:math:`\\bar W^\\ell = \\min_i W_i^\\ell`, which is
:math:`\\mathrm{Exp}(\\sum_i x_i)`-distributed; the estimator is
:math:`k / \\sum_\\ell \\bar W^\\ell`.

Min-diffusion is a symmetric network computation in the paper's sense —
every node runs the identical min-kernel — and it is separable, which is
exactly why it shards into the independent, seeded jobs the service
schedules.  The job is numpy-vectorized over a CSR adjacency and sized
(n ≈ tens of nodes) so the load generator can push hundreds of them
through the worker pool in seconds.
"""

from __future__ import annotations

import time

import numpy as np

from repro.network import generators

__all__ = ["gossip_sum_job", "gossip_campaign_spec"]


def gossip_sum_job(
    rng=None,
    metrics=None,
    progress=None,
    *,
    n: int = 24,
    p: float | None = None,
    k: int = 8,
    max_rounds: int | None = None,
    pace: float = 0.0,
    extra_rounds: int = 0,
) -> dict:
    """Estimate a sum of node values by exponential-minimum gossip.

    Parameters
    ----------
    n:
        Node count of the connected G(n, p) communication graph.
    p:
        Edge probability; ``None`` picks ``~4/n`` extra mass above the
        connectivity threshold.
    k:
        Exponential samples per node — the estimator's accuracy knob
        (relative error ~ :math:`1/\\sqrt{k}`).
    max_rounds:
        Safety bound on diffusion rounds (default ``4 n``; the true
        requirement is the graph diameter).
    pace:
        Seconds slept per diffusion round.  Purely a wall-clock knob for
        cluster tests and demos (a paced job can be SIGKILLed mid-run or
        watched over SSE) — it never touches the estimator, and wall time
        is a volatile field, so paced and unpaced *records of the same
        params* stay byte-identical.
    extra_rounds:
        Additional (paced, progress-reporting) no-op diffusion rounds run
        after convergence.  The minima are already global, so these change
        nothing but the job's duration; unlike ``pace`` this *is* a spec
        param, so jobs that want to be long-running get their own hash.

    Returns a JSON-able dict with the estimate, the true sum, the
    relative error and the rounds-to-convergence; emits ``gossip_rounds``
    and ``gossip_draws`` counters into ``metrics``.  ``progress`` (the
    campaign-convention per-step callback, injected by cluster mode) is
    called once per round with the fraction of cells still above the
    global minimum.
    """
    rng = np.random.default_rng(rng) if not hasattr(rng, "random") else rng
    if n < 2:
        raise ValueError("gossip needs at least 2 nodes")
    if k < 1:
        raise ValueError("k must be >= 1")
    if p is None:
        p = min(0.9, np.log(n) / n + 4.0 / n)
    graph_seed = int(rng.integers(2**31 - 1))
    net = generators.connected_gnp_graph(n, p, graph_seed)

    # node values and the per-node exponential samples W_i^l ~ Exp(x_i)
    values = 1.0 + rng.random(n)  # x_i in [1, 2): sums are O(n), rates sane
    draws = rng.exponential(1.0, size=(n, k)) / values[:, None]

    adjacency, order = net.to_csr()
    indptr = np.asarray(adjacency.indptr)
    indices = np.asarray(adjacency.indices)
    rows = np.repeat(np.arange(n), np.diff(indptr))

    def _report(step: int) -> None:
        if progress is not None:
            progress(
                step,
                active_fraction=float(np.mean(minima != target)),
                counters={"gossip_rounds": step},
            )

    # synchronous min-diffusion over closed neighbourhoods
    minima = draws.copy()
    target = minima.min(axis=0)
    limit = max_rounds if max_rounds is not None else 4 * n
    rounds = 0
    while rounds < limit and not np.all(minima == target):
        incoming = minima.copy()
        np.minimum.at(incoming, rows, minima[indices])
        minima = incoming
        rounds += 1
        _report(rounds)
        if pace > 0:
            time.sleep(pace)
    converged = bool(np.all(minima == target))

    # post-convergence padding: the minima are global, so these rounds
    # are pure duration (and progress frames) with no numeric effect
    for extra in range(extra_rounds):
        incoming = minima.copy()
        np.minimum.at(incoming, rows, minima[indices])
        minima = incoming
        _report(rounds + extra + 1)
        if pace > 0:
            time.sleep(pace)

    estimate = float(k / target.sum())
    true_sum = float(values.sum())
    if metrics is not None:
        metrics.inc("gossip_rounds", rounds)
        metrics.inc("gossip_draws", n * k)
        metrics.set_tag("workload", "gossip_sum")
    return {
        "n": n,
        "k": k,
        "edges": int(net.num_edges),
        "rounds": rounds,
        "converged": converged,
        "estimate": estimate,
        "true_sum": true_sum,
        "rel_error": abs(estimate - true_sum) / true_sum,
    }


def gossip_campaign_spec(
    *,
    jobs: int = 100,
    n: int = 24,
    k: int = 8,
    entropy: int = 2006,
    name: str = "gossip-loadgen",
):
    """A :class:`~repro.campaigns.spec.CampaignSpec` of ``jobs`` seeded
    gossip replicates — the load generator's (and the CI smoke test's)
    canonical workload."""
    from repro.campaigns.spec import CampaignSpec

    return CampaignSpec(
        name=name,
        job="repro.service.workload.gossip_sum_job",
        fixed={"n": n, "k": k},
        seeds=jobs,
        entropy=entropy,
        retries=0,
    )
