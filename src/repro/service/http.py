"""Minimal asyncio HTTP/1.1 + SSE front door (no frameworks).

The wire contract (see ``docs/model.md``, "Serving"):

``GET /healthz``
    ``200`` with ``{"ok":true,...}`` — liveness plus pool state
    (``ok``/``rebuilding``/``down``), the store's identity token (how a
    cluster operator confirms replicas really share one store), the
    replica id, and worker/inflight gauges.
``GET /metrics``
    ``200`` with the service :class:`~repro.runtime.telemetry.
    MetricsRegistry` snapshot plus live gauges.
``POST /jobs[?wait=1]``
    Body: a :meth:`~repro.campaigns.spec.JobSpec.payload`-shaped JSON
    object (``job_hash`` optional — the server recomputes it).  Tenant
    comes from the ``X-Tenant`` header.  Outcomes map to status codes:
    cached ``200``, accepted/deduplicated/lease_wait ``202`` (or ``200``
    with the sealed record when ``wait=1``), quota ``429``, backpressure
    ``503``.  ``lease_wait`` is cluster mode's sixth outcome: another
    replica holds the execution lease, and this replica's response waits
    on the shared store (taking the work over if the executor dies).
    The outcome is always in the ``X-Repro-Outcome`` response header,
    and every body holding a sealed record is its *canonical JSON* — so
    responses for one job are byte-identical whether the record was
    computed, deduplicated or served from the store.
``POST /campaigns[?wait=1]``
    Body: a :class:`~repro.campaigns.spec.CampaignSpec` JSON object.
    Expands server-side and submits every job; ``200`` with an
    admission summary (and per-outcome counts after completion when
    ``wait=1``).
``GET /jobs/<hash>``
    ``200`` canonical record, or ``404``.
``GET /jobs/<hash>/events``
    ``200`` ``text/event-stream``: one ``data:`` frame per typed event
    (the same JSONL encoding ``EventStream.dumps`` uses), closing after
    the terminal :class:`~repro.runtime.telemetry.JobEvent`.  In cluster
    mode the frames come from the job's shared event spool, so they
    include per-step
    :class:`~repro.runtime.telemetry.StepProgressEvent`\\ s and the
    stream works from replicas that are *not* executing the job.  Idle
    streams emit ``: keep-alive`` comment frames every
    ``sse_keepalive`` seconds (default 15) so intermediaries don't drop
    quiet subscribers.  A client disconnect mid-stream unsubscribes
    cleanly — it never cancels the job it was watching.

Error codes: ``400`` undecodable/invalid body, ``404`` unknown path or
job, ``405`` wrong method, ``413`` oversized body.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.campaigns.spec import CampaignSpec, canonical_json
from repro.runtime.telemetry import _EVENT_TAGS, _jsonable
from repro.service.jobs import JobManager

__all__ = ["ServiceConfig", "serve"]

MAX_BODY = 4 * 1024 * 1024  # a spec is small; anything bigger is abuse
_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}
#: Submission outcome → HTTP status (non-wait path).
_OUTCOME_STATUS = {
    "cached": 200,
    "accepted": 202,
    "deduplicated": 202,
    "lease_wait": 202,
    "quota_rejected": 429,
    "backpressure_rejected": 503,
}

#: JobSpec payload fields a client may send; everything else is rejected
#: rather than silently dropped (a typo must not change the job hash).
_JOB_FIELDS = {
    "campaign", "job", "params", "seed_index", "index", "entropy", "job_hash",
}


@dataclass
class ServiceConfig:
    """Knobs for one server; mirrors the ``repro serve`` CLI flags."""

    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 2
    queue_limit: int = 64
    quota_burst: Optional[float] = None
    quota_rate: float = 0.0
    retries: int = 0
    backoff: float = 0.05
    timeout: Optional[float] = None
    # cluster-mode knobs (replica_id None = single-process service)
    replica_id: Optional[str] = None
    lease_ttl: float = 10.0
    progress_stride: int = 1
    tenants: Optional[str] = None  # path to a TenantQuotaConfig file
    sse_keepalive: float = 15.0
    reuse_port: bool = False


def _event_line(event) -> str:
    """One typed event as its ``EventStream.dumps`` JSONL object."""
    obj = {"type": _EVENT_TAGS.get(type(event).__name__, type(event).__name__)}
    obj.update(_jsonable(event))
    return json.dumps(obj, default=repr)


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request head + body; returns ``None`` on EOF/garbage."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        return None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0) or 0)
    if length > MAX_BODY:
        return method, target, headers, None  # signal 413
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def _respond(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra: Optional[dict] = None,
) -> None:
    head = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)


def _json_response(
    writer, status: int, obj, *, extra: Optional[dict] = None
) -> None:
    _respond(
        writer, status, (canonical_json(obj) + "\n").encode("utf-8"), extra=extra
    )


def _error(writer, status: int, message: str) -> None:
    _json_response(writer, status, {"error": message})


async def _stream_events(manager: JobManager, job_hash: str, writer) -> None:
    """The SSE loop: replay history, then follow until terminal/EOF.

    Single-process managers feed the queue from the in-memory event
    stream; cluster managers tail the job's shared spool (see
    :meth:`~repro.service.jobs.JobManager.subscribe_any`) — the wire
    format is identical either way.  An idle wait longer than the
    manager's ``sse_keepalive`` emits a ``: keep-alive`` SSE comment so
    proxies and LBs don't reap the quiet connection.  Client disconnects
    surface as write errors; the ``finally`` always cleans up, so a
    vanished client costs nothing and — crucially — never cancels the
    job it was watching.
    """
    queue, cleanup = manager.subscribe_any(job_hash)
    keepalive = getattr(manager, "sse_keepalive", 15.0)
    head = (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-cache\r\n"
        "Connection: close\r\n\r\n"
    )
    try:
        writer.write(head.encode("latin-1"))
        await writer.drain()
        while True:
            try:
                event = await asyncio.wait_for(
                    queue.get(), timeout=keepalive if keepalive > 0 else None
                )
            except asyncio.TimeoutError:
                writer.write(b": keep-alive\n\n")
                await writer.drain()
                continue
            if event is None:
                writer.write(b"event: end\r\ndata: {}\n\n")
                await writer.drain()
                return
            writer.write(f"data: {_event_line(event)}\n\n".encode("utf-8"))
            await writer.drain()
    finally:
        cleanup()


def _parse_job_payload(body: bytes) -> dict:
    """Decode and validate one JobSpec payload; raises ``ValueError``."""
    data = json.loads(body.decode("utf-8"))
    if not isinstance(data, dict):
        raise ValueError("job payload must be a JSON object")
    unknown = set(data) - _JOB_FIELDS
    if unknown:
        raise ValueError(f"unknown job fields: {sorted(unknown)}")
    if "job" not in data:
        raise ValueError("job payload needs a 'job' dotted name")
    return {
        "campaign": data.get("campaign", "adhoc"),
        "job": data["job"],
        "params": dict(data.get("params", {})),
        "seed_index": int(data.get("seed_index", 0)),
        "index": int(data.get("index", 0)),
        "entropy": int(data.get("entropy", 0)),
        "job_hash": "",  # recomputed server-side by JobManager.submit
    }


async def _respond_submission(writer, submission, wait: bool) -> None:
    """Map one :class:`~repro.service.jobs.Submission` onto the wire."""
    extra = {"X-Repro-Outcome": submission.outcome}
    if submission.rejected:
        _json_response(
            writer, _OUTCOME_STATUS[submission.outcome],
            {"job_hash": submission.job_hash, "outcome": submission.outcome},
            extra=extra,
        )
        return
    if submission.outcome == "cached" or wait:
        record = await submission.result()
        if record is None:  # execution cancelled under the waiter
            _error(writer, 500, "job execution was cancelled")
            return
        status = 200 if record.get("status") == "ok" else 500
        _json_response(writer, status, record, extra=extra)
        return
    _json_response(
        writer, 202,
        {"job_hash": submission.job_hash, "outcome": submission.outcome},
        extra=extra,
    )


async def _handle(
    manager: JobManager,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        parsed = await _read_request(reader)
        if parsed is None:
            return
        method, target, headers, body = parsed
        if body is None:
            _error(writer, 413, "request body too large")
            return
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = parse_qs(url.query)
        wait = query.get("wait", ["0"])[0] not in ("0", "", "false")
        tenant = headers.get("x-tenant", "anonymous")

        if path == "/healthz" and method == "GET":
            health = {
                "ok": True,
                "pool": manager.pool_state,
                "store": str(manager.store.root),
                "store_identity": manager.store.identity(),
                "replica": manager.replica_id,
                "workers": manager.workers,
                "inflight": manager.inflight(),
            }
            if manager.tenant_config is not None:
                health["tenant_config"] = manager.tenant_config.snapshot()
            _json_response(writer, 200, health)
        elif path == "/metrics" and method == "GET":
            _json_response(writer, 200, manager.snapshot())
        elif path == "/jobs" and method == "POST":
            try:
                payload = _parse_job_payload(body)
            except (ValueError, json.JSONDecodeError) as exc:
                _error(writer, 400, f"bad job payload: {exc}")
                return
            try:
                submission = manager.submit(payload, tenant=tenant)
            except ValueError as exc:
                _error(writer, 400, f"unsubmittable job: {exc}")
                return
            await _respond_submission(writer, submission, wait)
        elif path == "/campaigns" and method == "POST":
            try:
                spec = CampaignSpec.from_dict(json.loads(body.decode("utf-8")))
            except (ValueError, TypeError, json.JSONDecodeError) as exc:
                _error(writer, 400, f"bad campaign spec: {exc}")
                return
            submissions = [
                manager.submit(job.payload(), tenant=tenant)
                for job in spec.expand()
            ]
            outcomes: dict[str, int] = {}
            for sub in submissions:
                outcomes[sub.outcome] = outcomes.get(sub.outcome, 0) + 1
            summary = {
                "spec_hash": spec.spec_hash,
                "total": len(submissions),
                "outcomes": outcomes,
                "job_hashes": [s.job_hash for s in submissions],
            }
            if wait:
                records = await asyncio.gather(
                    *(s.result() for s in submissions if not s.rejected)
                )
                summary["ok"] = sum(
                    1 for r in records if r and r.get("status") == "ok"
                )
                summary["failed"] = sum(
                    1 for r in records if r and r.get("status") != "ok"
                )
            _json_response(writer, 200, summary)
        elif path.startswith("/jobs/") and method == "GET":
            rest = path[len("/jobs/"):]
            if rest.endswith("/events"):
                job_hash = rest[: -len("/events")]
                if not manager.knows_job(job_hash):
                    _error(writer, 404, f"unknown job {job_hash!r}")
                else:
                    await _stream_events(manager, job_hash, writer)
            else:
                record = manager.record(rest)
                if record is None:
                    _error(writer, 404, f"no completed artifact for {rest!r}")
                else:
                    _json_response(
                        writer, 200, record, extra={"X-Repro-Outcome": "cached"}
                    )
        elif path in ("/jobs", "/campaigns", "/healthz", "/metrics"):
            _error(writer, 405, f"{method} not allowed on {path}")
        else:
            _error(writer, 404, f"no route for {path!r}")
    except (ConnectionError, asyncio.IncompleteReadError):
        pass  # client went away mid-request; nothing to answer
    except asyncio.CancelledError:
        raise
    except Exception as exc:  # pragma: no cover - defensive
        try:
            _error(writer, 500, repr(exc))
        except ConnectionError:
            pass
    finally:
        try:
            if not writer.is_closing():
                await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass


async def serve(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    reuse_port: bool = False,
):
    """Bind and return an :class:`asyncio.Server` routing to ``manager``.

    The manager must already be :meth:`~repro.service.jobs.JobManager.
    start`-ed.  Callers own both lifecycles: close the server, then
    ``await manager.close()``.  ``reuse_port=True`` sets SO_REUSEPORT so
    several cluster replicas can share one listening port and let the
    kernel spread connections across them (Linux; per-replica ports are
    the portable alternative).
    """
    return await asyncio.start_server(
        lambda r, w: _handle(manager, r, w), host, port,
        reuse_port=reuse_port or None,
    )
