"""End-to-end service smoke check (the CI gate).

Boots a real ``python -m repro serve`` subprocess on a free port with a
temporary store, then asserts the full serving loop:

1. ``POST /jobs?wait=1`` of a small gossip job answers ``200`` with a
   sealed ``status="ok"`` record (outcome ``accepted``).
2. ``GET /jobs/<hash>/events`` streams typed SSE frames ending in a
   terminal ``done``/``cached`` event.
3. Re-submitting the identical spec answers ``200`` with outcome
   ``cached`` and a byte-identical body — the store dedupe path.
4. ``GET /metrics`` shows ``cache_hits >= 1`` and zero store
   corruption (``verify()`` finds nothing).

Run it locally with ``python -m repro.service.smoke``; exit code 0 means
the service serves.
"""

from __future__ import annotations

import asyncio
import json
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.campaigns.spec import canonical_json
from repro.campaigns.store import ArtifactStore
from repro.service.loadgen import http_request

__all__ = ["run_smoke", "main"]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


async def _sse_frames(host, port, path, *, timeout=60.0) -> list[dict]:
    """Collect every ``data:`` frame of one SSE response until close."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close"
            "\r\n\r\n".encode("latin-1")
        )
        await writer.drain()

        async def read_frames():
            status_line = await reader.readline()
            assert b"200" in status_line, status_line
            frames = []
            while True:
                line = await reader.readline()
                if not line or line.startswith(b"event: end"):
                    return frames
                if line.startswith(b"data: "):
                    frames.append(json.loads(line[len(b"data: "):]))

        return await asyncio.wait_for(read_frames(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def _wait_healthy(host, port, *, budget=30.0) -> None:
    deadline = time.monotonic() + budget
    while True:
        try:
            status, _, _ = await http_request(host, port, "GET", "/healthz")
            if status == 200:
                return
        except (ConnectionError, OSError):
            pass
        if time.monotonic() > deadline:
            raise RuntimeError(f"server on {host}:{port} never became healthy")
        await asyncio.sleep(0.2)


async def run_smoke(store_dir: str) -> dict:
    """The checks; returns a small report dict, raises on any failure."""
    host, port = "127.0.0.1", _free_port()
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", host, "--port", str(port),
            "--store", store_dir, "--workers", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    try:
        await _wait_healthy(host, port)
        payload = {
            "campaign": "service-smoke",
            "job": "repro.service.workload.gossip_sum_job",
            "params": {"n": 16, "k": 4},
            "entropy": 2006,
        }
        body = canonical_json(payload).encode("utf-8")

        status, headers, first = await http_request(
            host, port, "POST", "/jobs?wait=1", body,
            headers={"X-Tenant": "smoke"},
        )
        assert status == 200, (status, first)
        assert headers.get("x-repro-outcome") == "accepted", headers
        record = json.loads(first)
        assert record["status"] == "ok", record
        job_hash = record["job_hash"]

        frames = await _sse_frames(host, port, f"/jobs/{job_hash}/events")
        assert frames, "no SSE frames streamed"
        assert all(f.get("type") == "job" for f in frames), frames
        assert frames[-1]["status"] in ("done", "cached"), frames

        status, headers, second = await http_request(
            host, port, "POST", "/jobs?wait=1", body,
            headers={"X-Tenant": "smoke"},
        )
        assert status == 200, (status, second)
        assert headers.get("x-repro-outcome") == "cached", headers
        assert second == first, "cached response is not byte-identical"

        status, _, metrics_body = await http_request(
            host, port, "GET", "/metrics"
        )
        assert status == 200
        counters = json.loads(metrics_body)["counters"]
        assert counters.get("cache_hits", 0) >= 1, counters

        bad = ArtifactStore(store_dir).verify()
        assert bad == [], f"corrupted artifacts: {bad}"
        return {
            "job_hash": job_hash,
            "sse_frames": len(frames),
            "counters": counters,
        }
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung server
            server.kill()
            server.wait()


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        report = asyncio.run(run_smoke(str(Path(tmp) / "store")))
    print("service smoke OK:", json.dumps(report, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
