"""Asyncio HTTP front door for the campaign layer.

``repro.service`` turns the content-addressed campaign machinery into a
small serving stack, all stdlib + numpy:

* :mod:`repro.service.jobs` — :class:`~repro.service.jobs.JobManager`:
  store-backed dedupe (a repeated submission is a cache hit returning the
  stored artifact), in-flight dedupe (concurrent identical submissions
  share one execution), per-tenant token-bucket quotas, bounded
  backpressure, and an async bridge onto the campaign worker pool.
* :mod:`repro.service.http` — a minimal HTTP/1.1 + SSE layer over
  ``asyncio.start_server`` (no frameworks); job progress streams as
  Server-Sent Events backed by the typed
  :class:`~repro.runtime.telemetry.EventStream`.
* :mod:`repro.service.workload` — the Mosk-Aoyama–Shah gossip
  aggregation job the load generator replays.
* :mod:`repro.service.loadgen` — an asyncio load generator reporting
  throughput and latency percentiles.

Start a server with ``python -m repro serve --store DIR`` and submit
specs with ``POST /jobs`` / ``POST /campaigns``; see ``docs/model.md``
("Serving") for the wire contract.
"""

from repro.service.http import ServiceConfig, serve
from repro.service.jobs import JobManager, Submission, TokenBucket

__all__ = [
    "JobManager",
    "Submission",
    "TokenBucket",
    "ServiceConfig",
    "serve",
]
