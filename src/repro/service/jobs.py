"""Job admission, dedupe, quotas and the async bridge to the worker pool.

:class:`JobManager` is the service's brain; the HTTP layer is a thin
codec over it.  One submission flows through four gates, in order:

1. **store dedupe** — the job's content hash already has a completed
   artifact: answer it from the store (``cache_hits``).  No quota is
   charged; cached reads are free by design, so replaying a finished
   campaign against the service costs zero executions.
2. **in-flight dedupe** — an identical job is executing right now: the
   submission shares that execution's future (``inflight_dedups``).
   N concurrent identical submissions perform exactly one execution.
3. **per-tenant quota** — a token-bucket (burst ``quota_burst``, refill
   ``quota_rate``/s) per ``X-Tenant`` value (``quota_rejections``).
4. **backpressure** — at most ``queue_limit`` jobs admitted-but-
   unfinished; beyond that, submissions are rejected immediately
   (``backpressure_rejections``) rather than queued without bound.

Admitted jobs run on a :class:`~concurrent.futures.ProcessPoolExecutor`
through :func:`repro.campaigns.runner.execute_job_async` — the asyncio
facade whose retry backoff is ``asyncio.sleep``, never a blocking
``time.sleep`` on the event loop.  Completed records are sealed into the
same :class:`~repro.campaigns.store.ArtifactStore` the batch runner
uses (whose append is concurrent-writer safe), so service and batch
executions of one spec are interchangeable and byte-identical.

Progress is observable per job: every lifecycle transition is a typed
:class:`~repro.runtime.telemetry.JobEvent` emitted into a per-job
:class:`~repro.runtime.telemetry.EventStream` and fanned out to any
number of SSE subscriber queues.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional

from repro.campaigns.runner import execute_job_async
from repro.campaigns.spec import JobSpec
from repro.campaigns.store import ArtifactStore
from repro.runtime.telemetry import EventStream, JobEvent, MetricsRegistry

__all__ = ["TokenBucket", "Submission", "JobManager"]

#: Submission outcomes (``Submission.outcome`` / ``X-Repro-Outcome``).
OUTCOMES = (
    "cached",
    "deduplicated",
    "accepted",
    "quota_rejected",
    "backpressure_rejected",
)


class TokenBucket:
    """A per-tenant request budget: ``burst`` tokens, ``rate``/s refill.

    Lazy refill on a monotonic clock — no timers, no background task.
    ``rate=0`` means a fixed budget of ``burst`` requests; a ``None``
    bucket (see :class:`JobManager`) means no quota at all.
    """

    __slots__ = ("burst", "rate", "tokens", "stamp", "clock")

    def __init__(self, burst: float, rate: float, clock=time.monotonic) -> None:
        if burst <= 0:
            raise ValueError("burst must be > 0")
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self.burst = float(burst)
        self.rate = float(rate)
        self.tokens = float(burst)
        self.clock = clock
        self.stamp = clock()

    def try_acquire(self, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; never blocks."""
        now = self.clock()
        self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


@dataclass
class Submission:
    """What :meth:`JobManager.submit` decided about one request.

    ``record`` is the sealed artifact for ``cached`` outcomes;
    ``future`` resolves to the sealed (or failure) record for
    ``accepted``/``deduplicated`` ones.  Rejections carry neither.
    """

    job_hash: str
    outcome: str
    record: Optional[dict] = None
    future: Optional[asyncio.Future] = None

    @property
    def rejected(self) -> bool:
        return self.outcome.endswith("_rejected")

    async def result(self) -> Optional[dict]:
        """The sealed record, waiting for execution if necessary."""
        if self.record is not None:
            return self.record
        if self.future is not None:
            # shield: the future may be shared by deduplicated
            # submissions, and a task cancelled mid-await (an HTTP
            # client disconnecting) would otherwise cancel the shared
            # future out from under every other waiter
            return await asyncio.shield(self.future)
        return None


class JobManager:
    """Admission control + execution for service-submitted jobs.

    Single-threaded by construction: every method runs on the event
    loop, so the gate checks in :meth:`submit` are atomic without locks.
    The only concurrency is the worker pool, reached exclusively through
    ``run_in_executor``.
    """

    def __init__(
        self,
        store_dir,
        *,
        workers: int = 2,
        queue_limit: int = 64,
        quota_burst: Optional[float] = None,
        quota_rate: float = 0.0,
        retries: int = 0,
        backoff: float = 0.05,
        timeout: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
    ) -> None:
        self.store = ArtifactStore(store_dir)
        self.workers = max(1, int(workers))
        self.queue_limit = int(queue_limit)
        self.quota_burst = quota_burst
        self.quota_rate = quota_rate
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.timeout = timeout
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.clock = clock
        self._completed: dict[str, dict] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self._tasks: set[asyncio.Task] = set()
        self._streams: dict[str, EventStream] = {}
        self._subscribers: dict[str, set[asyncio.Queue]] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- lifecycle -----------------------------------------------------
    def _make_executor(self) -> ProcessPoolExecutor:
        # spawn, not fork: pool workers are created lazily at first
        # submit, i.e. while client connections are accepted — a forked
        # worker would inherit every open socket fd and keep clients'
        # connections from ever seeing EOF after the server closes them
        # (and forking a live event loop is its own trouble)
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context("spawn"),
        )

    def start(self) -> None:
        """Warm the completed-job cache from the store, start the pool."""
        for job_hash, record in self.store.records().items():
            if record.get("status") == "ok":
                self._completed[job_hash] = record
        self._executor = self._make_executor()
        self.metrics.set_tag("service", "jobs")

    async def close(self) -> None:
        """Cancel in-flight work and shut the pool down."""
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def _rebuild_executor(self) -> None:
        from repro.campaigns.runner import _kill_executor

        if self._executor is not None:
            _kill_executor(self._executor)
        self._executor = self._make_executor()
        self.metrics.inc("pool_rebuilds")

    # -- events --------------------------------------------------------
    def _emit(self, job_hash: str, status: str, detail: Optional[dict] = None):
        event = JobEvent(job_hash=job_hash, status=status, detail=detail)
        stream = self._streams.setdefault(job_hash, EventStream())
        stream.emit(event)
        for queue in self._subscribers.get(job_hash, ()):
            queue.put_nowait(event)
        if event.terminal:
            for queue in self._subscribers.get(job_hash, ()):
                queue.put_nowait(None)  # end-of-stream sentinel
        return event

    def subscribe(self, job_hash: str) -> asyncio.Queue:
        """An event queue for one job, pre-loaded with its history.

        Yields :class:`~repro.runtime.telemetry.JobEvent` items followed
        by a ``None`` sentinel once the job reaches a terminal status.
        Pair with :meth:`unsubscribe` (a disconnected SSE client must
        not leak its queue).
        """
        queue: asyncio.Queue = asyncio.Queue()
        history = self._streams.get(job_hash)
        terminal = False
        if history is not None:
            for event in history:
                queue.put_nowait(event)
                terminal = terminal or event.terminal
        elif job_hash in self._completed:
            # completed before this process started — synthesize the
            # cached terminal event so late subscribers still terminate
            record = self._completed[job_hash]
            queue.put_nowait(
                JobEvent(
                    job_hash=job_hash,
                    status="cached",
                    detail={"content_hash": record.get("content_hash")},
                )
            )
            terminal = True
        if terminal:
            queue.put_nowait(None)
        else:
            self._subscribers.setdefault(job_hash, set()).add(queue)
        return queue

    def unsubscribe(self, job_hash: str, queue: asyncio.Queue) -> None:
        subs = self._subscribers.get(job_hash)
        if subs is not None:
            subs.discard(queue)
            if not subs:
                del self._subscribers[job_hash]

    def stream(self, job_hash: str) -> Optional[EventStream]:
        """The full typed event history of one job, if any."""
        return self._streams.get(job_hash)

    # -- admission -----------------------------------------------------
    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        if self.quota_burst is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.quota_burst, self.quota_rate, self.clock)
            self._buckets[tenant] = bucket
        return bucket

    def submit(self, payload: dict, tenant: str = "anonymous") -> Submission:
        """Admit one job payload; never blocks, never raises for policy.

        ``payload`` is a :meth:`~repro.campaigns.spec.JobSpec.payload`
        dict (its ``job_hash`` is recomputed here — the store key is
        what the server derives, not what the client claims).
        """
        if self._executor is None:
            raise RuntimeError("JobManager.start() was not called")
        spec = JobSpec.from_payload(payload)
        job_hash = spec.job_hash
        self.metrics.inc("jobs_submitted")
        self.metrics.observe("queue_depth", len(self._inflight))

        record = self._completed.get(job_hash)
        if record is not None:
            self.metrics.inc("cache_hits")
            return Submission(job_hash, "cached", record=record)

        future = self._inflight.get(job_hash)
        if future is not None:
            self.metrics.inc("inflight_dedups")
            return Submission(job_hash, "deduplicated", future=future)

        bucket = self._bucket(tenant)
        if bucket is not None and not bucket.try_acquire():
            self.metrics.inc("quota_rejections")
            return Submission(job_hash, "quota_rejected")

        if len(self._inflight) >= self.queue_limit:
            self.metrics.inc("backpressure_rejections")
            return Submission(job_hash, "backpressure_rejected")

        future = asyncio.get_running_loop().create_future()
        self._inflight[job_hash] = future
        self.metrics.inc("jobs_admitted")
        self._emit(job_hash, "queued", {"tenant": tenant})
        task = asyncio.get_running_loop().create_task(
            self._run_job(spec.payload(), future)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return Submission(job_hash, "accepted", future=future)

    # -- execution -----------------------------------------------------
    async def _run_job(self, payload: dict, future: asyncio.Future) -> None:
        job_hash = payload["job_hash"]
        try:
            record = await self._execute_with_rebuilds(payload)
            if record.get("status") == "ok":
                sealed = await asyncio.get_running_loop().run_in_executor(
                    None, self.store.append, record
                )
                self._completed[job_hash] = sealed
                self.metrics.inc("jobs_executed")
                self._emit(
                    job_hash, "done",
                    {"content_hash": sealed.get("content_hash")},
                )
            else:
                sealed = await asyncio.get_running_loop().run_in_executor(
                    None, self.store.append, record
                )
                self.metrics.inc("jobs_failed")
                self._emit(job_hash, "failed", {"error": sealed.get("error")})
            if not future.done():
                future.set_result(sealed)
        except asyncio.CancelledError:
            if not future.done():
                future.cancel()
            raise
        except Exception as exc:  # pragma: no cover - defensive
            self.metrics.inc("jobs_failed")
            self._emit(job_hash, "failed", {"error": repr(exc)})
            if not future.done():
                future.set_exception(exc)
        finally:
            self._inflight.pop(job_hash, None)

    async def _execute_with_rebuilds(self, payload: dict) -> dict:
        """Run one job, rebuilding the pool after crashes/timeouts.

        The retry budget spans rebuilds: ``retries + 1`` total attempts
        whether the failures were job errors or pool deaths.
        """
        job_hash = payload["job_hash"]
        attempts_used = 0
        while True:
            self._emit(job_hash, "started", {"attempt": attempts_used + 1})
            record = await execute_job_async(
                self._executor,
                payload,
                retries=self.retries - attempts_used,
                backoff=self.backoff,
                timeout=self.timeout,
                on_retry=lambda attempt, error: self._emit(
                    job_hash, "retry",
                    {"attempt": attempts_used + attempt, "error": error},
                ),
            )
            attempts_used += record.get("attempts", 1)
            if record.pop("pool_broken", False):
                self._rebuild_executor()
                if attempts_used <= self.retries:
                    self._emit(
                        job_hash, "retry",
                        {"attempt": attempts_used, "error": record.get("error")},
                    )
                    if self.backoff:
                        await asyncio.sleep(
                            self.backoff * (2 ** (attempts_used - 1))
                        )
                    continue
                record["status"] = "failed"
            elif record.get("status") not in ("ok",):
                record["status"] = "failed"
            record["attempts"] = attempts_used
            return record

    # -- introspection -------------------------------------------------
    def record(self, job_hash: str) -> Optional[dict]:
        """The completed artifact for ``job_hash``, if any."""
        return self._completed.get(job_hash)

    def inflight(self) -> int:
        return len(self._inflight)

    def snapshot(self) -> dict:
        """Service counters/series plus live gauges, for ``/metrics``."""
        snap = self.metrics.snapshot()
        snap["gauges"] = {
            "inflight": len(self._inflight),
            "completed": len(self._completed),
            "subscribers": sum(len(s) for s in self._subscribers.values()),
            "tenants": len(self._buckets),
            "workers": self.workers,
            "queue_limit": self.queue_limit,
        }
        return snap
