"""Job admission, dedupe, quotas and the async bridge to the worker pool.

:class:`JobManager` is the service's brain; the HTTP layer is a thin
codec over it.  One submission flows through four gates, in order:

1. **store dedupe** — the job's content hash already has a completed
   artifact: answer it from the store (``cache_hits``).  No quota is
   charged; cached reads are free by design, so replaying a finished
   campaign against the service costs zero executions.
2. **in-flight dedupe** — an identical job is executing right now: the
   submission shares that execution's future (``inflight_dedups``).
   N concurrent identical submissions perform exactly one execution.
3. **per-tenant quota** — a token-bucket (burst ``quota_burst``, refill
   ``quota_rate``/s) per ``X-Tenant`` value (``quota_rejections``).
4. **backpressure** — at most ``queue_limit`` jobs admitted-but-
   unfinished; beyond that, submissions are rejected immediately
   (``backpressure_rejections``) rather than queued without bound.

Admitted jobs run on a :class:`~concurrent.futures.ProcessPoolExecutor`
through :func:`repro.campaigns.runner.execute_job_async` — the asyncio
facade whose retry backoff is ``asyncio.sleep``, never a blocking
``time.sleep`` on the event loop.  Completed records are sealed into the
same :class:`~repro.campaigns.store.ArtifactStore` the batch runner
uses (whose append is concurrent-writer safe), so service and batch
executions of one spec are interchangeable and byte-identical.

Progress is observable per job: every lifecycle transition is a typed
:class:`~repro.runtime.telemetry.JobEvent` emitted into a per-job
:class:`~repro.runtime.telemetry.EventStream` and fanned out to any
number of SSE subscriber queues.

**Cluster mode** (``replica_id`` set) adds two gates and swaps the event
fan-out substrate, making the shared store directory the coordination
point between N replicas (see ``repro.cluster``):

* after the in-flight check, a live *lease* held by another replica on
  the job's hash (``claims.jsonl``) short-circuits admission into a
  ``lease_wait``: the submission gets a future resolved by a poller that
  tails the shared store for the remote replica's sealed record — and,
  if the lease goes stale (the executor was SIGKILLed), takes the lease
  over and executes the job here (``lease_takeovers``).  Executing
  replicas renew their leases on a heartbeat task at ``ttl/3``.
* lifecycle events of leased jobs are mirrored into a per-job *event
  spool* (``spool/<hash>.jsonl``) that worker processes also append
  :class:`~repro.runtime.telemetry.StepProgressEvent` frames to; SSE
  subscribers on **any** replica tail the spool
  (:meth:`JobManager.subscribe_any`), so progress of a job is visible
  from replicas that are not executing it.

Tenant quotas in cluster mode come from a shared
:class:`~repro.cluster.config.TenantQuotaConfig` file (mtime-reloaded)
instead of constructor arguments, so one edit retunes every replica.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional

from repro.campaigns.runner import execute_job_async
from repro.campaigns.spec import JobSpec
from repro.campaigns.store import ArtifactStore
from repro.runtime.telemetry import EventStream, JobEvent, MetricsRegistry

__all__ = ["TokenBucket", "Submission", "JobManager"]

#: Submission outcomes (``Submission.outcome`` / ``X-Repro-Outcome``).
OUTCOMES = (
    "cached",
    "deduplicated",
    "accepted",
    "lease_wait",
    "quota_rejected",
    "backpressure_rejected",
)


class TokenBucket:
    """A per-tenant request budget: ``burst`` tokens, ``rate``/s refill.

    Lazy refill on a monotonic clock — no timers, no background task.
    ``rate=0`` means a fixed budget of ``burst`` requests; a ``None``
    bucket (see :class:`JobManager`) means no quota at all.
    """

    __slots__ = ("burst", "rate", "tokens", "stamp", "clock")

    def __init__(self, burst: float, rate: float, clock=time.monotonic) -> None:
        if burst <= 0:
            raise ValueError("burst must be > 0")
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self.burst = float(burst)
        self.rate = float(rate)
        self.tokens = float(burst)
        self.clock = clock
        self.stamp = clock()

    def try_acquire(self, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; never blocks."""
        now = self.clock()
        self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def refund(self, cost: float = 1.0) -> None:
        """Return tokens taken by an admission that didn't execute (a
        cluster claim lost to another replica must not charge the
        tenant)."""
        self.tokens = min(self.burst, self.tokens + cost)


@dataclass
class Submission:
    """What :meth:`JobManager.submit` decided about one request.

    ``record`` is the sealed artifact for ``cached`` outcomes;
    ``future`` resolves to the sealed (or failure) record for
    ``accepted``/``deduplicated`` ones.  Rejections carry neither.
    """

    job_hash: str
    outcome: str
    record: Optional[dict] = None
    future: Optional[asyncio.Future] = None

    @property
    def rejected(self) -> bool:
        return self.outcome.endswith("_rejected")

    async def result(self) -> Optional[dict]:
        """The sealed record, waiting for execution if necessary."""
        if self.record is not None:
            return self.record
        if self.future is not None:
            # shield: the future may be shared by deduplicated
            # submissions, and a task cancelled mid-await (an HTTP
            # client disconnecting) would otherwise cancel the shared
            # future out from under every other waiter
            return await asyncio.shield(self.future)
        return None


class JobManager:
    """Admission control + execution for service-submitted jobs.

    Single-threaded by construction: every method runs on the event
    loop, so the gate checks in :meth:`submit` are atomic without locks.
    The only concurrency is the worker pool, reached exclusively through
    ``run_in_executor``.
    """

    def __init__(
        self,
        store_dir,
        *,
        workers: int = 2,
        queue_limit: int = 64,
        quota_burst: Optional[float] = None,
        quota_rate: float = 0.0,
        retries: int = 0,
        backoff: float = 0.05,
        timeout: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
        replica_id: Optional[str] = None,
        lease_ttl: float = 10.0,
        progress_stride: int = 1,
        tenant_config=None,
        sse_keepalive: float = 15.0,
        poll_interval: float = 0.05,
    ) -> None:
        self.store = ArtifactStore(store_dir)
        self.workers = max(1, int(workers))
        self.queue_limit = int(queue_limit)
        self.quota_burst = quota_burst
        self.quota_rate = quota_rate
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.timeout = timeout
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.clock = clock
        self.replica_id = replica_id
        self.lease_ttl = float(lease_ttl)
        self.progress_stride = max(1, int(progress_stride))
        self.tenant_config = tenant_config
        self.sse_keepalive = float(sse_keepalive)
        self.poll_interval = float(poll_interval)
        self.pool_state = "down"
        self._completed: dict[str, dict] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self._tasks: set[asyncio.Task] = set()
        self._streams: dict[str, EventStream] = {}
        self._subscribers: dict[str, set[asyncio.Queue]] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._bucket_generation = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        # cluster-mode state (all None/empty when replica_id is unset)
        self.claims = None
        self.spool = None
        self._leases: dict = {}
        self._store_offset = 0
        self._latest: dict[str, dict] = {}
        if replica_id is not None:
            from repro.cluster.claims import ClaimLedger
            from repro.cluster.spool import EventSpool

            self.claims = ClaimLedger(
                self.store.root, replica_id, ttl=self.lease_ttl
            )
            self.spool = EventSpool(self.store.root)

    @property
    def cluster(self) -> bool:
        """True iff this manager coordinates through a shared store."""
        return self.claims is not None

    # -- lifecycle -----------------------------------------------------
    def _make_executor(self) -> ProcessPoolExecutor:
        # spawn, not fork: pool workers are created lazily at first
        # submit, i.e. while client connections are accepted — a forked
        # worker would inherit every open socket fd and keep clients'
        # connections from ever seeing EOF after the server closes them
        # (and forking a live event loop is its own trouble)
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context("spawn"),
        )

    def start(self) -> None:
        """Warm the completed-job cache from the store, start the pool."""
        self._refresh_store()
        self._executor = self._make_executor()
        self.pool_state = "ok"
        self.metrics.set_tag("service", "jobs")
        if self.replica_id is not None:
            self.metrics.set_tag("replica", self.replica_id)

    async def close(self) -> None:
        """Cancel in-flight work and shut the pool down."""
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self.pool_state = "down"

    def _rebuild_executor(self) -> None:
        from repro.campaigns.runner import _kill_executor

        self.pool_state = "rebuilding"
        if self._executor is not None:
            _kill_executor(self._executor)
        self._executor = self._make_executor()
        self.pool_state = "ok"
        self.metrics.inc("pool_rebuilds")

    # -- shared-store view ---------------------------------------------
    def _refresh_store(self) -> None:
        """Fold records other writers appended into the local caches.

        Incremental (byte-offset cursor, complete lines only) so calling
        it on the admission path in cluster mode costs ``O(new records)``.
        The merge keeps the store's ok-wins rule: a completed artifact is
        never displaced by a later failure record.
        """
        records, self._store_offset = self.store.tail_records(
            self._store_offset
        )
        for rec in records:
            job_hash = rec.get("job_hash")
            if job_hash is None:
                continue
            if (
                self._latest.get(job_hash, {}).get("status") == "ok"
                and rec.get("status") != "ok"
            ):
                continue
            self._latest[job_hash] = rec
            if rec.get("status") == "ok":
                self._completed[job_hash] = rec

    # -- events --------------------------------------------------------
    def _emit(self, job_hash: str, status: str, detail: Optional[dict] = None):
        event = JobEvent(job_hash=job_hash, status=status, detail=detail)
        stream = self._streams.setdefault(job_hash, EventStream())
        stream.emit(event)
        for queue in self._subscribers.get(job_hash, ()):
            queue.put_nowait(event)
        if event.terminal:
            for queue in self._subscribers.get(job_hash, ()):
                queue.put_nowait(None)  # end-of-stream sentinel
        if self.spool is not None and job_hash in self._leases:
            # mirror the lifecycle of jobs *we* execute into the spool so
            # other replicas' SSE subscribers see it; spool loss is an
            # observability gap, never a correctness problem
            try:
                self.spool.append(job_hash, event)
            except OSError:  # pragma: no cover - disk trouble
                pass
        return event

    def subscribe(self, job_hash: str) -> asyncio.Queue:
        """An event queue for one job, pre-loaded with its history.

        Yields :class:`~repro.runtime.telemetry.JobEvent` items followed
        by a ``None`` sentinel once the job reaches a terminal status.
        Pair with :meth:`unsubscribe` (a disconnected SSE client must
        not leak its queue).
        """
        queue: asyncio.Queue = asyncio.Queue()
        history = self._streams.get(job_hash)
        terminal = False
        if history is not None:
            for event in history:
                queue.put_nowait(event)
                terminal = terminal or event.terminal
        elif job_hash in self._completed:
            # completed before this process started — synthesize the
            # cached terminal event so late subscribers still terminate
            record = self._completed[job_hash]
            queue.put_nowait(
                JobEvent(
                    job_hash=job_hash,
                    status="cached",
                    detail={"content_hash": record.get("content_hash")},
                )
            )
            terminal = True
        if terminal:
            queue.put_nowait(None)
        else:
            self._subscribers.setdefault(job_hash, set()).add(queue)
        return queue

    def unsubscribe(self, job_hash: str, queue: asyncio.Queue) -> None:
        subs = self._subscribers.get(job_hash)
        if subs is not None:
            subs.discard(queue)
            if not subs:
                del self._subscribers[job_hash]

    def stream(self, job_hash: str) -> Optional[EventStream]:
        """The full typed event history of one job, if any."""
        return self._streams.get(job_hash)

    def subscribe_any(self, job_hash: str):
        """An event queue for one job plus its cleanup callable.

        Single-process mode delegates to :meth:`subscribe`.  Cluster mode
        instead tails the job's shared event spool, which carries the
        executing replica's lifecycle events *and* the worker processes'
        :class:`~repro.runtime.telemetry.StepProgressEvent` frames — so
        the same SSE contract is served whether or not this replica is
        the executor, at step granularity.  The returned queue yields
        typed events then a ``None`` sentinel; ``cleanup()`` must be
        called when the consumer goes away.
        """
        if not self.cluster:
            queue = self.subscribe(job_hash)
            return queue, lambda: self.unsubscribe(job_hash, queue)
        queue: asyncio.Queue = asyncio.Queue()
        task = asyncio.get_running_loop().create_task(
            self._pump_spool(job_hash, queue)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return queue, task.cancel

    async def _pump_spool(self, job_hash: str, queue: asyncio.Queue) -> None:
        """Tail one job's spool into ``queue`` until a terminal event.

        A job that finished without ever spooling (completed before this
        cluster existed, or cached) gets a synthesized terminal event
        from the store record, so subscribers always terminate.
        """
        offset = 0
        while True:
            events, offset = self.spool.read(job_hash, offset)
            for event in events:
                queue.put_nowait(event)
                if isinstance(event, JobEvent) and event.terminal:
                    queue.put_nowait(None)
                    return
            if not events:
                record = self._completed.get(job_hash)
                if record is None:
                    self._refresh_store()
                    record = self._completed.get(job_hash)
                if record is not None:
                    # the executor seals the store record *before* spooling
                    # its terminal event, so the record can become visible
                    # a beat ahead of the "done"/"failed" frame.  If a
                    # spool exists the executor was streaming: give its
                    # terminal append a bounded grace so subscribers see
                    # the real frame; synthesize only if it never lands
                    # (executor died between the two appends) or the job
                    # never spooled at all (cached / pre-cluster record).
                    grace = 10 if self.spool.path(job_hash).exists() else 1
                    for _ in range(grace):
                        events, offset = self.spool.read(job_hash, offset)
                        for event in events:
                            queue.put_nowait(event)
                            if isinstance(event, JobEvent) and event.terminal:
                                queue.put_nowait(None)
                                return
                        if grace > 1:
                            await asyncio.sleep(self.poll_interval)
                    queue.put_nowait(
                        JobEvent(
                            job_hash=job_hash,
                            status="cached",
                            detail={
                                "content_hash": record.get("content_hash")
                            },
                        )
                    )
                    queue.put_nowait(None)
                    return
            await asyncio.sleep(self.poll_interval)

    def knows_job(self, job_hash: str) -> bool:
        """True iff this replica can say anything about ``job_hash`` —
        local record/stream, a shared-store record, a spool, or a live
        lease somewhere in the cluster."""
        if (
            job_hash in self._completed
            or job_hash in self._streams
            or job_hash in self._inflight
        ):
            return True
        if not self.cluster:
            return False
        self._refresh_store()
        if job_hash in self._latest:
            return True
        if self.spool.path(job_hash).exists():
            return True
        return self.claims.peek(job_hash) is not None

    # -- admission -----------------------------------------------------
    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        if self.tenant_config is not None:
            quota = self.tenant_config.lookup(tenant)  # mtime-checked
            if self.tenant_config.generation != self._bucket_generation:
                # new config: drop every cached bucket so fresh budgets
                # apply now, not when old buckets happen to drain
                self._buckets.clear()
                self._bucket_generation = self.tenant_config.generation
            if quota is None:
                return None
            burst, rate = quota
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(burst, rate, self.clock)
                self._buckets[tenant] = bucket
            return bucket
        if self.quota_burst is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.quota_burst, self.quota_rate, self.clock)
            self._buckets[tenant] = bucket
        return bucket

    def _lease_wait(self, payload: dict) -> Submission:
        """Admit a job another replica is executing: free (no quota — the
        executor's tenant paid), resolved by a poller that tails the
        shared store and takes the lease over if it goes stale."""
        job_hash = payload["job_hash"]
        future = asyncio.get_running_loop().create_future()
        self._inflight[job_hash] = future
        self.metrics.inc("lease_waits")
        task = asyncio.get_running_loop().create_task(
            self._remote_poll(payload, future)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return Submission(job_hash, "lease_wait", future=future)

    def submit(self, payload: dict, tenant: str = "anonymous") -> Submission:
        """Admit one job payload; never blocks, never raises for policy.

        ``payload`` is a :meth:`~repro.campaigns.spec.JobSpec.payload`
        dict (its ``job_hash`` is recomputed here — the store key is
        what the server derives, not what the client claims).
        """
        if self._executor is None:
            raise RuntimeError("JobManager.start() was not called")
        spec = JobSpec.from_payload(payload)
        job_hash = spec.job_hash
        self.metrics.inc("jobs_submitted")
        self.metrics.observe("queue_depth", len(self._inflight))
        if self.cluster:
            # fold other replicas' completions in first, so their work
            # is answered as cache hits, not re-admitted
            self._refresh_store()

        record = self._completed.get(job_hash)
        if record is not None:
            self.metrics.inc("cache_hits")
            return Submission(job_hash, "cached", record=record)

        future = self._inflight.get(job_hash)
        if future is not None:
            self.metrics.inc("inflight_dedups")
            return Submission(job_hash, "deduplicated", future=future)

        if self.cluster:
            holder = self.claims.peek(job_hash)
            if holder is not None and holder["replica"] != self.replica_id:
                return self._lease_wait(spec.payload())

        bucket = self._bucket(tenant)
        if bucket is not None and not bucket.try_acquire():
            self.metrics.inc("quota_rejections")
            return Submission(job_hash, "quota_rejected")

        if len(self._inflight) >= self.queue_limit:
            self.metrics.inc("backpressure_rejections")
            return Submission(job_hash, "backpressure_rejected")

        if self.cluster:
            lease = self.claims.acquire(job_hash)
            if lease is None:
                # lost the peek→acquire race to another replica; the
                # tenant shouldn't pay for work that runs elsewhere
                if bucket is not None:
                    bucket.refund()
                return self._lease_wait(spec.payload())
            self._leases[job_hash] = lease

        future = asyncio.get_running_loop().create_future()
        self._inflight[job_hash] = future
        self.metrics.inc("jobs_admitted")
        self._emit(job_hash, "queued", {"tenant": tenant})
        task = asyncio.get_running_loop().create_task(
            self._run_job(spec.payload(), future)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return Submission(job_hash, "accepted", future=future)

    # -- execution -----------------------------------------------------
    async def _heartbeat_loop(self, lease) -> None:
        """Renew one lease at ``ttl/3`` until cancelled or lost.

        Losing a lease (a peer judged us dead and took over) does *not*
        abort our execution — a duplicated deterministic job appends a
        byte-identical record and ok-wins merging keeps one artifact —
        but it is counted (``lease_lost``) and the renewals stop.
        """
        interval = max(self.lease_ttl / 3.0, 0.01)
        while True:
            await asyncio.sleep(interval)
            alive = await asyncio.get_running_loop().run_in_executor(
                None, self.claims.heartbeat, lease
            )
            if not alive:
                self.metrics.inc("lease_lost")
                return

    async def _run_job(self, payload: dict, future: asyncio.Future) -> None:
        job_hash = payload["job_hash"]
        lease = self._leases.get(job_hash)
        heartbeat: Optional[asyncio.Task] = None
        if lease is not None:
            heartbeat = asyncio.get_running_loop().create_task(
                self._heartbeat_loop(lease)
            )
        outcome = "failed"
        try:
            record = await self._execute_with_rebuilds(payload)
            if record.get("status") == "ok":
                sealed = await asyncio.get_running_loop().run_in_executor(
                    None, self.store.append, record
                )
                self._completed[job_hash] = sealed
                self.metrics.inc("jobs_executed")
                outcome = "done"
                self._emit(
                    job_hash, "done",
                    {"content_hash": sealed.get("content_hash")},
                )
            else:
                sealed = await asyncio.get_running_loop().run_in_executor(
                    None, self.store.append, record
                )
                self.metrics.inc("jobs_failed")
                self._emit(job_hash, "failed", {"error": sealed.get("error")})
            if not future.done():
                future.set_result(sealed)
        except asyncio.CancelledError:
            if not future.done():
                future.cancel()
            raise
        except Exception as exc:  # pragma: no cover - defensive
            self.metrics.inc("jobs_failed")
            self._emit(job_hash, "failed", {"error": repr(exc)})
            if not future.done():
                future.set_exception(exc)
        finally:
            self._inflight.pop(job_hash, None)
            if heartbeat is not None:
                heartbeat.cancel()
            if lease is not None and self._leases.pop(job_hash, None):
                # release *after* the store append above: a peer that
                # sees no live lease will find the record when it
                # re-reads the store before attempting takeover
                try:
                    await asyncio.get_running_loop().run_in_executor(
                        None, self.claims.release, lease, outcome
                    )
                except OSError:  # pragma: no cover - disk trouble
                    pass

    async def _remote_poll(self, payload: dict, future: asyncio.Future) -> None:
        """Resolve a ``lease_wait`` submission from the shared store.

        Polls the store tail for the remote executor's sealed record;
        when the lease disappears *without* a record the executor died —
        re-read the store once more (release follows append, so a clean
        finish can't be mistaken for a death) and then race the other
        replicas to take the lease over and execute here.
        """
        job_hash = payload["job_hash"]
        loop = asyncio.get_running_loop()
        try:
            while True:
                await asyncio.sleep(self.poll_interval)
                if future.done():
                    return
                self._refresh_store()
                sealed = self._latest.get(job_hash)
                if sealed is not None and sealed.get("status") in (
                    "ok", "failed",
                ):
                    self._inflight.pop(job_hash, None)
                    if not future.done():
                        future.set_result(sealed)
                    return
                holder = await loop.run_in_executor(
                    None, self.claims.peek, job_hash
                )
                if holder is not None:
                    continue  # still executing (or a peer took over)
                self._refresh_store()
                if job_hash in self._latest:
                    continue  # record landed between peek and refresh
                lease = await loop.run_in_executor(
                    None, self.claims.acquire, job_hash
                )
                if lease is None:
                    continue  # another waiter won the takeover race
                self.metrics.inc("lease_takeovers")
                self._leases[job_hash] = lease
                self._emit(
                    job_hash, "queued",
                    {"takeover": True, "replica": self.replica_id},
                )
                await self._run_job(payload, future)
                return
        except asyncio.CancelledError:
            self._inflight.pop(job_hash, None)
            if not future.done():
                future.cancel()
            raise

    async def _execute_with_rebuilds(self, payload: dict) -> dict:
        """Run one job, rebuilding the pool after crashes/timeouts.

        The retry budget spans rebuilds: ``retries + 1`` total attempts
        whether the failures were job errors or pool deaths.
        """
        job_hash = payload["job_hash"]
        context = None
        if self.cluster and job_hash in self._leases:
            context = {
                "store_root": str(self.store.root),
                "stride": self.progress_stride,
                "replica": self.replica_id,
            }
        attempts_used = 0
        while True:
            self._emit(job_hash, "started", {"attempt": attempts_used + 1})
            record = await execute_job_async(
                self._executor,
                payload,
                retries=self.retries - attempts_used,
                backoff=self.backoff,
                timeout=self.timeout,
                on_retry=lambda attempt, error: self._emit(
                    job_hash, "retry",
                    {"attempt": attempts_used + attempt, "error": error},
                ),
                context=context,
            )
            attempts_used += record.get("attempts", 1)
            if record.pop("pool_broken", False):
                self._rebuild_executor()
                if attempts_used <= self.retries:
                    self._emit(
                        job_hash, "retry",
                        {"attempt": attempts_used, "error": record.get("error")},
                    )
                    if self.backoff:
                        await asyncio.sleep(
                            self.backoff * (2 ** (attempts_used - 1))
                        )
                    continue
                record["status"] = "failed"
            elif record.get("status") not in ("ok",):
                record["status"] = "failed"
            record["attempts"] = attempts_used
            return record

    # -- introspection -------------------------------------------------
    def record(self, job_hash: str) -> Optional[dict]:
        """The completed artifact for ``job_hash``, if any (in cluster
        mode, including records other replicas appended)."""
        rec = self._completed.get(job_hash)
        if rec is None and self.cluster:
            self._refresh_store()
            rec = self._completed.get(job_hash)
        return rec

    def inflight(self) -> int:
        return len(self._inflight)

    def snapshot(self) -> dict:
        """Service counters/series plus live gauges, for ``/metrics``."""
        snap = self.metrics.snapshot()
        snap["gauges"] = {
            "inflight": len(self._inflight),
            "completed": len(self._completed),
            "subscribers": sum(len(s) for s in self._subscribers.values()),
            "tenants": len(self._buckets),
            "workers": self.workers,
            "queue_limit": self.queue_limit,
        }
        if self.cluster:
            snap["gauges"]["leases_held"] = len(self._leases)
            snap["replica"] = self.replica_id
            if self.tenant_config is not None:
                snap["tenant_config"] = self.tenant_config.snapshot()
        return snap
