"""Gossip-workload load generator for the service front door.

Replays the Mosk-Aoyama–Shah gossip aggregation campaign
(:func:`repro.service.workload.gossip_campaign_spec`) against a running
``repro serve`` instance as individual ``POST /jobs?wait=1``
submissions, bounded by a client-side concurrency window, and reports
throughput plus latency percentiles.  A ``repeat_fraction`` re-submits a
slice of the jobs afterwards to measure the cache-hit path (those must
all come back ``X-Repro-Outcome: cached``).

The client is raw ``asyncio.open_connection`` — the same no-framework
discipline as the server — so the benchmark measures the service, not a
client library.

Run standalone::

    python -m repro.service.loadgen --port 8765 --jobs 100 --concurrency 16
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from time import perf_counter
from typing import Optional

from repro.campaigns.spec import canonical_json
from repro.service.workload import gossip_campaign_spec

__all__ = ["http_request", "run_loadgen", "main"]


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[bytes] = None,
    headers: Optional[dict] = None,
    timeout: float = 120.0,
):
    """One HTTP/1.1 request; returns ``(status, headers, body_bytes)``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = [f"{method} {path} HTTP/1.1", f"Host: {host}:{port}"]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        head.append(f"Content-Length: {len(body or b'')}")
        head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        if body:
            writer.write(body)
        await writer.drain()

        async def read_all():
            status_line = await reader.readline()
            status = int(status_line.split()[1])
            resp_headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                resp_headers[name.strip().lower()] = value.strip()
            # read exactly Content-Length — never wait for EOF, which a
            # forked worker process holding a duplicate of this socket
            # could postpone indefinitely
            length = resp_headers.get("content-length")
            if length is not None:
                payload = await reader.readexactly(int(length))
            else:
                payload = await reader.read()
            return status, resp_headers, payload

        return await asyncio.wait_for(read_all(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover - teardown race
            pass


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[int(idx)]


def _parse_target(target: str, default_host: str = "127.0.0.1") -> tuple:
    """``host:port`` or bare ``port`` → ``(host, port)``."""
    host, _, port = target.rpartition(":")
    return (host or default_host, int(port))


async def run_loadgen(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    jobs: int = 100,
    concurrency: int = 16,
    n: int = 24,
    k: int = 8,
    entropy: int = 2006,
    tenant: str = "loadgen",
    repeat_fraction: float = 0.1,
    targets: Optional[list] = None,
) -> dict:
    """Drive ``jobs`` gossip submissions; returns the report dict.

    ``targets`` (a list of ``(host, port)`` pairs) round-robins the
    submissions across several replicas — the cluster bench's traffic
    shape, where duplicate hashes land on different front doors.  The
    report carries a ``per_outcome`` breakdown (count + latency
    percentiles keyed by ``X-Repro-Outcome``), so the executed path and
    the dedupe/cache paths are measured separately instead of being
    averaged into one latency number.
    """
    spec = gossip_campaign_spec(jobs=jobs, n=n, k=k, entropy=entropy)
    payloads = [job.payload() for job in spec.expand()]
    if not targets:
        targets = [(host, port)]
    targets = [tuple(t) for t in targets]
    window = asyncio.Semaphore(max(1, concurrency))
    latencies: list[float] = []
    by_outcome: dict[str, list[float]] = {}
    statuses: dict[int, int] = {}

    async def submit(index: int, payload: dict) -> None:
        t_host, t_port = targets[index % len(targets)]
        body = canonical_json(
            {key: value for key, value in payload.items() if key != "job_hash"}
        ).encode("utf-8")
        async with window:
            t0 = perf_counter()
            status, resp_headers, _ = await http_request(
                t_host, t_port, "POST", "/jobs?wait=1", body,
                headers={"X-Tenant": tenant, "Content-Type": "application/json"},
            )
            elapsed = perf_counter() - t0
        latencies.append(elapsed)
        outcome = resp_headers.get("x-repro-outcome", "?")
        by_outcome.setdefault(outcome, []).append(elapsed)
        statuses[status] = statuses.get(status, 0) + 1

    t_start = perf_counter()
    await asyncio.gather(*(submit(i, p) for i, p in enumerate(payloads)))
    wall_time = perf_counter() - t_start

    # replay a prefix (still round-robin): every one must be answered
    # from the store, whichever replica executed it
    n_repeat = int(len(payloads) * repeat_fraction)
    repeat_outcomes: dict[str, int] = {}
    for index, payload in enumerate(payloads[:n_repeat]):
        t_host, t_port = targets[index % len(targets)]
        body = canonical_json(
            {key: value for key, value in payload.items() if key != "job_hash"}
        ).encode("utf-8")
        status, resp_headers, _ = await http_request(
            t_host, t_port, "POST", "/jobs?wait=1", body,
            headers={"X-Tenant": tenant},
        )
        outcome = resp_headers.get("x-repro-outcome", "?")
        repeat_outcomes[outcome] = repeat_outcomes.get(outcome, 0) + 1

    latencies.sort()
    per_outcome = {}
    for outcome, values in sorted(by_outcome.items()):
        values.sort()
        per_outcome[outcome] = {
            "count": len(values),
            "latency_p50": _percentile(values, 0.50),
            "latency_p90": _percentile(values, 0.90),
            "latency_p99": _percentile(values, 0.99),
        }
    return {
        "jobs": jobs,
        "concurrency": concurrency,
        "n": n,
        "k": k,
        "targets": [f"{h}:{p}" for h, p in targets],
        "wall_time": wall_time,
        "throughput_jobs_per_s": jobs / wall_time if wall_time else 0.0,
        "latency_p50": _percentile(latencies, 0.50),
        "latency_p90": _percentile(latencies, 0.90),
        "latency_p99": _percentile(latencies, 0.99),
        "statuses": statuses,
        "outcomes": {o: d["count"] for o, d in per_outcome.items()},
        "per_outcome": per_outcome,
        "repeat_outcomes": repeat_outcomes,
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="gossip-aggregation load generator for repro serve",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument(
        "--target", action="append", default=None, metavar="HOST:PORT",
        help="replica address; repeat to round-robin across a cluster "
             "(overrides --host/--port)",
    )
    parser.add_argument("--jobs", type=int, default=100)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--n", type=int, default=24, help="gossip graph size")
    parser.add_argument("--k", type=int, default=8, help="samples per node")
    parser.add_argument("--entropy", type=int, default=2006)
    parser.add_argument("--tenant", default="loadgen")
    args = parser.parse_args(argv)
    targets = (
        [_parse_target(t, args.host) for t in args.target]
        if args.target
        else None
    )
    report = asyncio.run(
        run_loadgen(
            args.host, args.port,
            jobs=args.jobs, concurrency=args.concurrency,
            n=args.n, k=args.k, entropy=args.entropy, tenant=args.tenant,
            targets=targets,
        )
    )
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0 if report["statuses"].get(200, 0) == args.jobs else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    raise SystemExit(main())
